//! Grammar-aware wire-frame mutation.
//!
//! The fuzzing half of the hardened-parsing story: [`MessageMutator`]
//! takes *valid* frames produced by the workload generators and damages
//! them in ways that target the parser's actual decision points — length
//! fields, framing boundaries, header structure — rather than flipping
//! random bits (which mostly produces trivially-invalid noise the first
//! byte of parsing rejects). Every choice derives from an order-stable
//! [`SimRng`] fork, so a hostile scenario replays bit-identically from
//! its seed (the seed-replay contract of DESIGN.md §12 extends to the
//! mutations).
//!
//! Each [`MutationKind`] comes with a *verdict contract*: either the
//! server's bounded parser must classify the frame as `Malformed` and
//! close the connection (counted in `NetStats::malformed_closes`), or the
//! frame is merely *incomplete* — a truncation or a slowloris stall — and
//! the server owes nothing but a clean teardown when the peer gives up.
//! The scenario driver turns those contracts into per-run invariants; the
//! unit tests below check them directly against [`HttpCodec`].

use flick_net::SimRng;

/// Bytes of unterminated header stream the head-flood mutation emits.
/// Deliberately past the default 64 KiB `ParseLimits::max_head_bytes`, so
/// a default-bounded parser must reject the flood mid-stream instead of
/// buffering it forever.
pub const HEAD_FLOOD_BYTES: usize = 80 * 1024;

/// The grammar-aware damage a [`MessageMutator`] can do to a valid frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// Declare a body length far past any sane parse bound (a 16 GiB
    /// `Content-Length` on a bodyless request).
    OversizedLength,
    /// Declare the body length twice, with disagreeing values — the
    /// classic request-smuggling ambiguity.
    DuplicateLength,
    /// Declare the body length in a shape strict parsers must reject
    /// (`+1`, hex, internal whitespace, empty).
    GarbledLength,
    /// Splice a second complete frame into the middle of the first one's
    /// request line, corrupting the method token.
    SpliceFrames,
    /// Stream header lines that never terminate, past the head limit —
    /// the slowloris that *floods* instead of trickling.
    HeadFlood,
    /// Cut the head short and hang up: an incomplete frame, not a
    /// malformed one.
    TruncateHead,
    /// Trickle a few valid bytes one write at a time, then stall and hang
    /// up — the classic slowloris, delivered byte-wise.
    Slowloris,
}

impl MutationKind {
    /// Every kind, in the order the mutator draws from.
    pub const ALL: [MutationKind; 7] = [
        MutationKind::OversizedLength,
        MutationKind::DuplicateLength,
        MutationKind::GarbledLength,
        MutationKind::SpliceFrames,
        MutationKind::HeadFlood,
        MutationKind::TruncateHead,
        MutationKind::Slowloris,
    ];

    /// Short name used in traces.
    pub fn name(&self) -> &'static str {
        match self {
            MutationKind::OversizedLength => "oversized-length",
            MutationKind::DuplicateLength => "duplicate-length",
            MutationKind::GarbledLength => "garbled-length",
            MutationKind::SpliceFrames => "splice",
            MutationKind::HeadFlood => "head-flood",
            MutationKind::TruncateHead => "truncate",
            MutationKind::Slowloris => "slowloris",
        }
    }

    /// The verdict contract: `true` if a bounded parser must classify the
    /// mutated frame as `Malformed` (and the server close the connection,
    /// counting it); `false` if the frame is merely incomplete and the
    /// client hanging up is the end of the story.
    pub fn expects_malformed_close(&self) -> bool {
        !matches!(self, MutationKind::TruncateHead | MutationKind::Slowloris)
    }
}

/// How the mutated bytes should reach the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// One write.
    Whole,
    /// Chunks of the given size — the head flood arrives as a stream, and
    /// the server is expected to slam the door mid-delivery.
    Chunked(usize),
    /// One byte per write, then stall: the sender never finishes.
    ByteWiseThenStall,
}

/// One mutated frame, ready to send.
#[derive(Debug, Clone)]
pub struct MutatedFrame {
    /// What was done to the frame.
    pub kind: MutationKind,
    /// The bytes to put on the wire.
    pub bytes: Vec<u8>,
    /// How to put them there.
    pub delivery: Delivery,
}

/// A seeded, grammar-aware frame mutator.
///
/// All randomness flows through the [`SimRng`] handed in at construction;
/// two mutators built from the same seed produce identical mutation
/// streams over identical inputs.
#[derive(Debug, Clone)]
pub struct MessageMutator {
    rng: SimRng,
}

impl MessageMutator {
    /// Wraps an existing (typically forked) generator.
    pub fn new(rng: SimRng) -> Self {
        MessageMutator { rng }
    }

    /// Convenience constructor from a bare seed.
    pub fn from_seed(seed: u64) -> Self {
        MessageMutator::new(SimRng::new(seed))
    }

    /// Draws the per-request hostile decision. Kept on the mutator's own
    /// stream so enabling hostile traffic never shifts the draw order of
    /// the driver's other decision streams.
    pub fn roll(&mut self, rate: f64) -> bool {
        self.rng.chance(rate)
    }

    /// Mutates one valid frame. `frame` must be a complete HTTP/1.1
    /// request (ending in `\r\n\r\n`); the output honours the chosen
    /// kind's verdict contract.
    pub fn mutate(&mut self, frame: &[u8]) -> MutatedFrame {
        let kind = MutationKind::ALL[self.rng.pick(MutationKind::ALL.len())];
        match kind {
            MutationKind::OversizedLength => {
                // 16 GiB and change: parses as digits, blows any sane
                // body bound.
                let declared = (1u64 << 34) + self.rng.pick(1000) as u64;
                let bytes = insert_headers(frame, &format!("Content-Length: {declared}\r\n"));
                MutatedFrame {
                    kind,
                    bytes,
                    delivery: Delivery::Whole,
                }
            }
            MutationKind::DuplicateLength => {
                let first = self.rng.pick(16);
                let second = first + 1 + self.rng.pick(16);
                let bytes = insert_headers(
                    frame,
                    &format!("Content-Length: {first}\r\nContent-Length: {second}\r\n"),
                );
                MutatedFrame {
                    kind,
                    bytes,
                    delivery: Delivery::Whole,
                }
            }
            MutationKind::GarbledLength => {
                const SHAPES: [&str; 4] = ["+1", "0x10", "1 1", ""];
                let value = SHAPES[self.rng.pick(SHAPES.len())];
                let bytes = insert_headers(frame, &format!("Content-Length: {value}\r\n"));
                MutatedFrame {
                    kind,
                    bytes,
                    delivery: Delivery::Whole,
                }
            }
            MutationKind::SpliceFrames => {
                // Cut inside the method token and graft a whole second
                // frame on: the first token of the result is the victim's
                // method prefix fused onto the donor's method — never a
                // valid method itself.
                let method_len = frame
                    .iter()
                    .position(|&b| b == b' ')
                    .unwrap_or(1)
                    .clamp(1, 8);
                let cut = 1 + self.rng.pick(method_len);
                let donor = b"GET /spliced HTTP/1.1\r\nHost: mutator\r\n\r\n";
                let mut bytes = frame[..cut].to_vec();
                bytes.extend_from_slice(donor);
                MutatedFrame {
                    kind,
                    bytes,
                    delivery: Delivery::Whole,
                }
            }
            MutationKind::HeadFlood => {
                let mut bytes = b"GET /flood HTTP/1.1\r\n".to_vec();
                let mut line = 0usize;
                while bytes.len() <= HEAD_FLOOD_BYTES {
                    bytes.extend_from_slice(format!("X-Flood-{line}: {:a<64}\r\n", "").as_bytes());
                    line += 1;
                }
                // No terminating blank line — the head never ends.
                MutatedFrame {
                    kind,
                    bytes,
                    delivery: Delivery::Chunked(8 * 1024),
                }
            }
            MutationKind::TruncateHead => {
                // Keep 1..=len-2 bytes: always at least one byte short of
                // the terminator, so the remainder is incomplete, never
                // complete.
                let keep = 1 + self.rng.pick(frame.len().saturating_sub(2).max(1));
                MutatedFrame {
                    kind,
                    bytes: frame[..keep.min(frame.len() - 1)].to_vec(),
                    delivery: Delivery::Whole,
                }
            }
            MutationKind::Slowloris => {
                let keep = (frame.len() / 2).clamp(1, 10);
                MutatedFrame {
                    kind,
                    bytes: frame[..keep].to_vec(),
                    delivery: Delivery::ByteWiseThenStall,
                }
            }
        }
    }
}

/// Inserts raw header lines just before a complete frame's terminating
/// blank line.
fn insert_headers(frame: &[u8], lines: &str) -> Vec<u8> {
    debug_assert!(
        frame.ends_with(b"\r\n\r\n"),
        "mutator input must be a complete frame"
    );
    let split = frame.len().saturating_sub(2);
    let mut bytes = Vec::with_capacity(frame.len() + lines.len());
    bytes.extend_from_slice(&frame[..split]);
    bytes.extend_from_slice(lines.as_bytes());
    bytes.extend_from_slice(&frame[split..]);
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_grammar::http::HttpCodec;
    use flick_grammar::{ParseOutcome, WireCodec};

    const FRAME: &[u8] = b"GET /c0/t0 HTTP/1.1\r\nHost: sim\r\n\r\n";

    #[test]
    fn same_seed_same_mutation_stream() {
        let mut a = MessageMutator::from_seed(0xF00D);
        let mut b = MessageMutator::from_seed(0xF00D);
        for _ in 0..64 {
            assert_eq!(a.roll(0.3), b.roll(0.3));
            let (ma, mb) = (a.mutate(FRAME), b.mutate(FRAME));
            assert_eq!(ma.kind, mb.kind);
            assert_eq!(ma.bytes, mb.bytes);
            assert_eq!(ma.delivery, mb.delivery);
        }
    }

    /// The verdict contract, checked against the real bounded codec: every
    /// malformed-expecting mutation must actually parse as an error under
    /// default limits, and every incomplete-expecting mutation must parse
    /// as `Incomplete` (the server keeps waiting; the client hangs up).
    #[test]
    fn mutations_honour_their_verdict_contract() {
        let codec = HttpCodec::new();
        let mut mutator = MessageMutator::from_seed(0x5EED);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..256 {
            let mutated = mutator.mutate(FRAME);
            seen.insert(mutated.kind.name());
            let outcome = codec.parse(&mutated.bytes, None);
            if mutated.kind.expects_malformed_close() {
                assert!(
                    outcome.is_err(),
                    "{} must be malformed, parsed to {outcome:?}",
                    mutated.kind.name()
                );
            } else {
                assert!(
                    matches!(outcome, Ok(ParseOutcome::Incomplete { .. })),
                    "{} must stay incomplete, parsed to {outcome:?}",
                    mutated.kind.name()
                );
            }
        }
        assert_eq!(
            seen.len(),
            MutationKind::ALL.len(),
            "256 draws must exercise every mutation kind: {seen:?}"
        );
    }

    /// The head flood must reject *incrementally* — before the stream ever
    /// terminates — once the buffered prefix passes the head bound.
    #[test]
    fn head_flood_rejects_mid_stream() {
        let codec = HttpCodec::new();
        let mut mutator = MessageMutator::from_seed(1);
        let flood = loop {
            let mutated = mutator.mutate(FRAME);
            if mutated.kind == MutationKind::HeadFlood {
                break mutated;
            }
        };
        assert!(flood.bytes.len() > HEAD_FLOOD_BYTES);
        // A prefix under the bound is still (correctly) incomplete…
        assert!(matches!(
            codec.parse(&flood.bytes[..32 * 1024], None),
            Ok(ParseOutcome::Incomplete { .. })
        ));
        // …but past the bound the parser must give up rather than buffer.
        assert!(codec.parse(&flood.bytes, None).is_err());
    }

    #[test]
    fn splice_corrupts_the_method_of_any_victim() {
        let codec = HttpCodec::new();
        let mut mutator = MessageMutator::from_seed(2);
        let victims: [&[u8]; 3] = [
            FRAME,
            b"POST /submit HTTP/1.1\r\nHost: sim\r\nContent-Length: 0\r\n\r\n",
            b"DELETE /x HTTP/1.1\r\n\r\n",
        ];
        for victim in victims {
            for _ in 0..64 {
                let mutated = mutator.mutate(victim);
                if mutated.kind == MutationKind::SpliceFrames {
                    assert!(
                        codec.parse(&mutated.bytes, None).is_err(),
                        "spliced {mutated:?} must not parse"
                    );
                }
            }
        }
    }
}
