//! The deterministic scenario driver.
//!
//! A scenario boots a whole [`Platform`] graph over the simulated
//! transport, drives it with scripted clients for a fixed number of
//! ticks, injects the scheduled faults, and runs the invariant battery
//! after every tick. Every random choice — churn, byte-at-a-time
//! delivery, mid-message aborts — derives from the single scenario seed
//! through order-stable [`SimRng`] forks, so a failing run replays
//! bit-identically from its seed alone.
//!
//! ## Determinism contract
//!
//! The driver's *decisions* (fault applications, per-client plans) are a
//! pure function of the seed and are always recorded in the [`Trace`].
//! Request *outcomes* are additionally recorded when
//! [`ScenarioConfig::trace_outcomes`] is set; that flag must stay off for
//! partial-outage schedules, where the load balancer's backend choice
//! hangs off globally allocated connection ids and two runs may route a
//! given client to different backends. Full-outage schedules (every
//! backend down, or none) have deterministic outcome classes and keep the
//! flag on.

use crate::fault::{FaultOp, ScheduledFault};
use crate::invariant::{check_tick, TickChecks, Violation};
use crate::message_mutator::{Delivery, MessageMutator};
use crate::trace::Trace;
use flick_grammar::http::HttpCodec;
use flick_grammar::{ParseOutcome, WireCodec};
use flick_net::listener::ConnectOptions;
use flick_net::ratelimit::TokenBucket;
use flick_net::stats::StatsSnapshot;
use flick_net::{Endpoint, NetError, SimNetwork, SimRng};
use flick_runtime::metrics::MetricsSnapshot;
use flick_runtime::{BackendPolicy, ExecMode, Placement, Platform, PlatformConfig, ServiceSpec};
use flick_services::{HttpLoadBalancerFactory, StaticWebServerFactory};
use flick_workload::backends::{start_http_backend, BackendHandle};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Patience for a response while any backend is down: connections routed
/// to a dead backend never complete, and ones routed to a live backend
/// answer in microseconds, so a short window classifies reliably.
const DEGRADED_PATIENCE: Duration = Duration::from_millis(300);

/// Deadline for a response while everything is healthy. A healthy
/// platform answers in microseconds; hitting this means a wakeup was
/// lost somewhere, which is exactly what the harness exists to catch.
const HEALTHY_DEADLINE: Duration = Duration::from_secs(8);

/// One scripted chaos run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Name used in traces and reports.
    pub name: &'static str,
    /// The seed every random choice derives from.
    pub seed: u64,
    /// Number of driver ticks (one request per client per tick).
    pub ticks: u64,
    /// Concurrent scripted clients.
    pub clients: usize,
    /// HTTP backends behind the load balancer; `0` deploys the static
    /// web server instead.
    pub backends: usize,
    /// Platform worker threads.
    pub workers: usize,
    /// Platform shards (`0` = auto).
    pub shards: usize,
    /// Graph placement policy.
    pub placement: Placement,
    /// Response body size served by the backends (or the web server).
    pub body_len: usize,
    /// The fault schedule.
    pub faults: Vec<ScheduledFault>,
    /// Per-request probability of delivering the request one byte per
    /// write (exercises incremental parsing and per-byte wakeups).
    pub byte_at_a_time: f64,
    /// Per-tick probability a client closes and reconnects before
    /// sending (connection churn).
    pub churn: f64,
    /// Per-request probability of writing half the request and
    /// disconnecting (mid-message abort).
    pub abort_mid_message: f64,
    /// Per-request probability of replacing the clean request with a
    /// grammar-aware mutated frame (see [`crate::MessageMutator`]).
    /// [`FaultOp::HostileTraffic`] can change the rate mid-run. The
    /// mutation decision draws from its own per-client RNG fork, so
    /// turning the knob never shifts the churn/byte-wise/abort streams.
    pub hostile: f64,
    /// Backend health/routing policy the platform runs with (ejection
    /// threshold, sit-out, retry budget).
    pub backend_policy: BackendPolicy,
    /// Write-rate limit applied to every client connection as
    /// `(bits_per_sec, burst_bytes)` — the rate-storm knob. Service
    /// outputs stay unrated so the busy-retry gate remains meaningful.
    pub client_rate: Option<(u64, usize)>,
    /// Pipe capacity for client connections (small values force
    /// buffer-full transitions on the response path).
    pub pipe_capacity: Option<usize>,
    /// Record request outcomes in the trace (keep off for partial-outage
    /// schedules; see the module docs).
    pub trace_outcomes: bool,
    /// Tick-level gates layered over the conservation laws.
    pub checks: TickChecks,
    /// When set, the service under test is the FLICK-compiled HTTP load
    /// balancer (`flick_services::http::HTTP_LB_FLICK_SOURCE`) deployed
    /// under the given execution mode, instead of the hand-written
    /// factory (which bypasses the compiler's execution engines
    /// entirely). Requires `backends > 0`. `None` — the default — keeps
    /// the built-in factories, so pinned traces replay unchanged.
    pub flick_lb: Option<ExecMode>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            name: "scenario",
            seed: 0xF11C,
            ticks: 12,
            clients: 4,
            backends: 2,
            workers: 2,
            shards: 2,
            placement: Placement::RoundRobin,
            body_len: 512,
            faults: Vec::new(),
            byte_at_a_time: 0.0,
            churn: 0.0,
            abort_mid_message: 0.0,
            hostile: 0.0,
            backend_policy: BackendPolicy::default(),
            client_rate: None,
            pipe_capacity: None,
            trace_outcomes: true,
            checks: TickChecks::default(),
            flick_lb: None,
        }
    }
}

/// What a scenario run produced.
#[derive(Debug)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: &'static str,
    /// The seed the run derived from.
    pub seed: u64,
    /// The full decision trace.
    pub trace: Trace,
    /// FNV-1a hash of the trace — the replay witness.
    pub trace_hash: u64,
    /// Every invariant violation, in the order it surfaced.
    pub violations: Vec<Violation>,
    /// Requests that completed with a full parsed response.
    pub requests_ok: u64,
    /// Requests that did not (severed, refused, degraded-timeout…).
    pub requests_failed: u64,
    /// Requests the backend fleet served, accumulated across restarts.
    pub backend_requests_served: u64,
    /// Mutated frames sent (hostile traffic is accounted separately from
    /// clean requests — a rejected poison frame is a success story).
    pub hostile_sent: u64,
    /// Mutated frames the service answered by closing the connection —
    /// the observed malformed rejections.
    pub hostile_rejected: u64,
    /// Runtime counters at teardown (backend ejections/readmits, retry
    /// totals — what the acceptance assertions read).
    pub final_metrics: MetricsSnapshot,
    /// Substrate counters at teardown (`malformed_closes` and friends).
    pub final_net: StatsSnapshot,
}

impl ScenarioReport {
    /// Panics with every violation (each carries the replay seed) unless
    /// the run was clean.
    pub fn assert_clean(&self) {
        if self.violations.is_empty() {
            return;
        }
        let rendered: Vec<String> = self.violations.iter().map(|v| v.to_string()).collect();
        panic!(
            "scenario '{}' violated {} invariant(s):\n  {}",
            self.name,
            self.violations.len(),
            rendered.join("\n  ")
        );
    }
}

struct BackendSlot {
    port: u16,
    handle: Option<BackendHandle>,
    /// Requests served by previous incarnations (accumulated at crash).
    served_before: u64,
}

impl BackendSlot {
    fn served_total(&self) -> u64 {
        self.served_before
            + self
                .handle
                .as_ref()
                .map(|h| h.requests_served())
                .unwrap_or(0)
    }
}

struct ClientSlot {
    conn: Option<Endpoint>,
}

const SERVICE_PORT: u16 = 8300;
const BACKEND_BASE: u16 = 9301;

/// Runs one scenario to completion and reports trace, counters and
/// violations. Never panics on an invariant failure — callers decide via
/// [`ScenarioReport::assert_clean`].
pub fn run_scenario(config: &ScenarioConfig) -> ScenarioReport {
    let seed = config.seed;
    let mut trace = Trace::new();
    let mut violations: Vec<Violation> = Vec::new();
    trace.push(format!(
        "scenario {} seed {:#018x} ticks {} clients {} backends {}",
        config.name, seed, config.ticks, config.clients, config.backends
    ));

    let platform = Platform::new(PlatformConfig {
        workers: config.workers,
        shards: config.shards,
        placement: config.placement.clone(),
        backend_policy: config.backend_policy,
        ..Default::default()
    });
    let net = platform.net();
    let body = vec![b'x'; config.body_len.max(1)];

    let mut backends: Vec<BackendSlot> = (0..config.backends)
        .map(|i| {
            let port = BACKEND_BASE + i as u16;
            BackendSlot {
                port,
                handle: Some(start_http_backend(&net, port, &body)),
                served_before: 0,
            }
        })
        .collect();

    let mut service = if let Some(mode) = config.flick_lb {
        // Compile the bundled FLICK balancer so the scenario exercises
        // the full compiler pipeline (grammar projection, IR, bytecode)
        // under the chosen execution engine, not a hand-written factory.
        assert!(
            config.backends > 0,
            "the FLICK-compiled load balancer needs at least one backend"
        );
        let compiled = flick_compiler::compile_source(
            flick_services::http::HTTP_LB_FLICK_SOURCE,
            "HttpBalancer",
            &flick_compiler::CompileOptions::default(),
        )
        .expect("bundled FLICK balancer compiles");
        let ports: Vec<u16> = backends.iter().map(|b| b.port).collect();
        platform
            .deploy(
                ServiceSpec::new(config.name, SERVICE_PORT, compiled)
                    .with_backends(ports)
                    .with_exec_mode(mode),
            )
            .expect("service deploys")
    } else if config.backends > 0 {
        let ports: Vec<u16> = backends.iter().map(|b| b.port).collect();
        platform
            .deploy(
                ServiceSpec::new(config.name, SERVICE_PORT, HttpLoadBalancerFactory::new())
                    .with_backends(ports),
            )
            .expect("service deploys")
    } else {
        platform
            .deploy(ServiceSpec::new(
                config.name,
                SERVICE_PORT,
                StaticWebServerFactory::new(body.clone()),
            ))
            .expect("service deploys")
    };

    let root = SimRng::new(seed);
    let mut client_rngs: Vec<SimRng> = (0..config.clients)
        .map(|i| root.fork("client").fork_indexed(i as u64))
        .collect();
    // The mutators fork from their own label so hostile decisions never
    // perturb the established client decision streams.
    let mut mutators: Vec<MessageMutator> = (0..config.clients)
        .map(|i| MessageMutator::new(root.fork("mutator").fork_indexed(i as u64)))
        .collect();
    let mut clients: Vec<ClientSlot> = (0..config.clients)
        .map(|_| ClientSlot { conn: None })
        .collect();
    let mut buckets: Vec<Arc<TokenBucket>> = Vec::new();
    let codec = HttpCodec::new();
    let metrics = platform.metrics();

    // Resolve the retry-budget gate against the policy actually deployed
    // (None in the config means "gate at the scenario's own budget").
    let mut checks = config.checks;
    if checks.retry_budget.is_none() {
        checks.retry_budget = Some(config.backend_policy.retry_budget as u64);
    }

    let mut requests_ok = 0u64;
    let mut requests_failed = 0u64;
    let mut hostile_rate = config.hostile;
    let mut hostile_sent = 0u64;
    let mut hostile_rejected = 0u64;

    let connect_options = ConnectOptions {
        link_bits_per_sec: None,
        capacity: config.pipe_capacity,
    };
    let connect = |net: &Arc<SimNetwork>, buckets: &mut Vec<Arc<TokenBucket>>| {
        let mut conn = net.connect_with(SERVICE_PORT, &connect_options).ok()?;
        if let Some((bits, burst)) = config.client_rate {
            let bucket = Arc::new(TokenBucket::new_bits_per_sec(bits, burst));
            conn.set_write_rate(Arc::clone(&bucket));
            buckets.push(bucket);
        }
        Some(conn)
    };

    for tick in 0..config.ticks {
        // --- Faults first: no request spans a fault boundary. ---
        let mut faulted = false;
        for fault in config.faults.iter().filter(|f| f.tick == tick) {
            match &fault.op {
                FaultOp::CrashBackend(i) => {
                    let slot = &mut backends[*i];
                    if let Some(mut handle) = slot.handle.take() {
                        // Sever while the port is still mapped, then
                        // unbind and join: once this returns, no response
                        // from the dead incarnation can ever arrive. The
                        // severed-connection count is timing-dependent
                        // (async graph teardown), so it stays out of the
                        // replay-hashed trace.
                        net.sever_port(slot.port);
                        net.unlisten(slot.port);
                        slot.served_before += handle.requests_served();
                        handle.stop();
                        trace.push(format!("t{tick} crash backend {i}"));
                        faulted = true;
                    }
                }
                FaultOp::RestartBackend(i) => {
                    let slot = &mut backends[*i];
                    if slot.handle.is_none() {
                        slot.handle = Some(start_http_backend(&net, slot.port, &body));
                        trace.push(format!("t{tick} restart backend {i}"));
                        faulted = true;
                    }
                }
                FaultOp::SeverClients => {
                    net.sever_port(SERVICE_PORT);
                    trace.push(format!("t{tick} sever clients"));
                    faulted = true;
                }
                FaultOp::QuietCheck {
                    ms,
                    max_extra_task_runs,
                } => {
                    let before = metrics.snapshot().task_runs;
                    std::thread::sleep(Duration::from_millis(*ms));
                    let after = metrics.snapshot().task_runs;
                    trace.push(format!("t{tick} quiet check {ms}ms"));
                    if after - before > *max_extra_task_runs {
                        violations.push(Violation::new(
                            seed,
                            tick,
                            format!(
                                "{} task runs during a {ms}ms quiet window (max {})",
                                after - before,
                                max_extra_task_runs
                            ),
                        ));
                    }
                }
                FaultOp::SabotageZeroCopy => {
                    net.stats().record_ingest_copy(1);
                    trace.push(format!("t{tick} sabotage zero-copy"));
                }
                FaultOp::HostileTraffic { permille } => {
                    hostile_rate = *permille as f64 / 1000.0;
                    trace.push(format!("t{tick} hostile rate {permille} per-mille"));
                }
            }
        }
        if faulted {
            // Reset every client to a fresh connection so post-fault
            // client state is a function of the schedule, not of how far
            // asynchronous teardown had progressed when the tick started.
            for client in clients.iter_mut() {
                if let Some(conn) = client.conn.take() {
                    conn.close();
                }
            }
        }
        let degraded = backends.iter().any(|b| b.handle.is_none());

        // --- Client actions, in index order. ---
        let mut pending: Vec<bool> = vec![false; config.clients];
        let mut pending_hostile: Vec<bool> = vec![false; config.clients];
        for (i, client) in clients.iter_mut().enumerate() {
            let rng = &mut client_rngs[i];
            // Fixed draw order per tick keeps every client's stream
            // aligned across runs regardless of outcomes. The hostile
            // draw comes off the mutator's own stream, every tick, for
            // the same reason.
            let churn = rng.chance(config.churn);
            let byte_wise = rng.chance(config.byte_at_a_time);
            let abort = rng.chance(config.abort_mid_message);
            let hostile = mutators[i].roll(hostile_rate);
            if churn {
                if let Some(conn) = client.conn.take() {
                    conn.close();
                }
                trace.push(format!("t{tick} c{i} churn"));
            }
            if client.conn.is_none() {
                match connect(&net, &mut buckets) {
                    Some(conn) => client.conn = Some(conn),
                    None => {
                        requests_failed += 1;
                        if config.trace_outcomes {
                            trace.push(format!("t{tick} c{i} refused"));
                        }
                        continue;
                    }
                }
            }
            let conn = client.conn.as_ref().expect("connected above");
            let request = format!("GET /c{i}/t{tick} HTTP/1.1\r\nHost: sim\r\n\r\n");
            let bytes = request.as_bytes();
            if hostile {
                let mutation = mutators[i].mutate(bytes);
                trace.push(format!("t{tick} c{i} hostile {}", mutation.kind.name()));
                hostile_sent += 1;
                if mutation.kind.expects_malformed_close() {
                    // Deliver the poison. The server may slam the door
                    // mid-write (the head flood is *designed* to be cut
                    // off), so write errors are part of the plan.
                    match mutation.delivery {
                        Delivery::Chunked(step) => {
                            for chunk in mutation.bytes.chunks(step) {
                                if conn.write_all(chunk).is_err() {
                                    break;
                                }
                            }
                        }
                        _ => {
                            let _ = conn.write_all(&mutation.bytes);
                        }
                    }
                    pending_hostile[i] = true;
                } else {
                    // Incomplete frames (truncation, slowloris): deliver
                    // and hang up; the server owes only a clean teardown.
                    match mutation.delivery {
                        Delivery::ByteWiseThenStall => {
                            for b in &mutation.bytes {
                                if conn.write_all(&[*b]).is_err() {
                                    break;
                                }
                            }
                        }
                        _ => {
                            let _ = conn.write_all(&mutation.bytes);
                        }
                    }
                    conn.close();
                    client.conn = None;
                }
                continue;
            }
            if abort {
                let half = &bytes[..bytes.len() / 2];
                let _ = conn.write_all(half);
                conn.close();
                client.conn = None;
                requests_failed += 1;
                trace.push(format!("t{tick} c{i} abort mid-message"));
                continue;
            }
            let wrote = if byte_wise {
                trace.push(format!("t{tick} c{i} byte-wise"));
                bytes.iter().all(|b| conn.write_all(&[*b]).is_ok())
            } else {
                conn.write_all(bytes).is_ok()
            };
            if wrote {
                pending[i] = true;
            } else {
                conn.close();
                client.conn = None;
                requests_failed += 1;
                if config.trace_outcomes {
                    trace.push(format!("t{tick} c{i} write-err"));
                }
            }
        }

        // --- Drain responses, in index order. ---
        let patience = if degraded {
            DEGRADED_PATIENCE
        } else {
            HEALTHY_DEADLINE
        };
        for (i, client) in clients.iter_mut().enumerate() {
            if pending_hostile[i] {
                // A malformed-expecting frame: the only acceptable answer
                // is a closed connection. A parsed response means the
                // bounded parser waved poison through; a healthy-mode
                // timeout means the connection (and its buffer) leaked.
                let conn = client.conn.as_ref().expect("pending implies connected");
                let deadline = Instant::now() + patience;
                let mut buf = Vec::with_capacity(256);
                let mut chunk = [0u8; 8192];
                let outcome = loop {
                    if Instant::now() >= deadline {
                        break "hostile-timeout";
                    }
                    match conn.read_timeout(&mut chunk, Duration::from_millis(50)) {
                        Ok(n) => {
                            buf.extend_from_slice(&chunk[..n]);
                            match codec.parse(&buf, None) {
                                Ok(ParseOutcome::Complete { .. }) => break "hostile-answered",
                                _ => continue,
                            }
                        }
                        Err(NetError::TimedOut) => continue,
                        Err(_) => break "hostile-rejected",
                    }
                };
                match outcome {
                    "hostile-rejected" => hostile_rejected += 1,
                    "hostile-answered" => violations.push(Violation::new(
                        seed,
                        tick,
                        format!("client {i}: service answered a malformed frame with a response"),
                    )),
                    _ if !degraded => violations.push(Violation::new(
                        seed,
                        tick,
                        format!(
                            "client {i}: service neither closed nor rejected a malformed \
                             frame within {patience:?}"
                        ),
                    )),
                    _ => {}
                }
                if let Some(conn) = client.conn.take() {
                    conn.close();
                }
                if config.trace_outcomes {
                    trace.push(format!("t{tick} c{i} {outcome}"));
                }
                continue;
            }
            if !pending[i] {
                continue;
            }
            let conn = client.conn.as_ref().expect("pending implies connected");
            let deadline = Instant::now() + patience;
            let mut buf = Vec::with_capacity(config.body_len + 128);
            let mut chunk = [0u8; 8192];
            let outcome = loop {
                if Instant::now() >= deadline {
                    break "timeout";
                }
                match conn.read_timeout(&mut chunk, Duration::from_millis(50)) {
                    Ok(n) => {
                        buf.extend_from_slice(&chunk[..n]);
                        match codec.parse(&buf, None) {
                            Ok(ParseOutcome::Complete { .. }) => break "ok",
                            Ok(ParseOutcome::Incomplete { .. }) => continue,
                            Err(_) => break "garbled",
                        }
                    }
                    Err(NetError::TimedOut) => continue,
                    Err(_) => break "closed",
                }
            };
            match outcome {
                "ok" => requests_ok += 1,
                "timeout" if !degraded => {
                    requests_failed += 1;
                    violations.push(Violation::new(
                        seed,
                        tick,
                        format!(
                            "client {i} got no response in {:?} with every backend \
                             healthy (lost wakeup?)",
                            HEALTHY_DEADLINE
                        ),
                    ));
                }
                _ => requests_failed += 1,
            }
            if outcome != "ok" {
                // Unwedge: a degraded connection may hang off a graph
                // that never built; reconnect fresh next tick.
                if let Some(conn) = client.conn.take() {
                    conn.close();
                }
            }
            if config.trace_outcomes {
                trace.push(format!("t{tick} c{i} {outcome}"));
            }
        }

        // --- Invariants, every tick. ---
        violations.extend(check_tick(
            seed,
            tick,
            &net.stats().snapshot(),
            &metrics.snapshot(),
            checks,
        ));
        for bucket in &buckets {
            if let Err(what) = bucket.check_conservation() {
                violations.push(Violation::new(seed, tick, what));
            }
        }
        trace.push(format!("t{tick} end"));
    }

    // --- Teardown: everything must come back down. ---
    for client in clients.iter_mut() {
        if let Some(conn) = client.conn.take() {
            conn.close();
        }
    }
    if !wait_until(Duration::from_secs(10), || service.live_graphs() == 0) {
        violations.push(Violation::new(
            seed,
            u64::MAX,
            format!(
                "{} graph(s) leaked after every client left",
                service.live_graphs()
            ),
        ));
    }
    service.stop();
    if !wait_until(Duration::from_secs(10), || platform.task_count() == 0) {
        violations.push(Violation::new(
            seed,
            u64::MAX,
            format!(
                "{} task(s) leaked after service stop",
                platform.task_count()
            ),
        ));
    }

    // Request conservation: every parsed response implies a backend
    // actually served it — across crashes and restarts.
    let backend_requests_served: u64 = backends.iter().map(|b| b.served_total()).sum();
    if config.backends > 0 && requests_ok > backend_requests_served {
        violations.push(Violation::new(
            seed,
            u64::MAX,
            format!(
                "request conservation violated: {requests_ok} responses parsed \
                 but only {backend_requests_served} requests served"
            ),
        ));
    }
    // Malformed accounting. The substrate records a malformed close
    // *after* the socket is torn down, so the client-side rejection can
    // race ahead of the counter — give it a moment to catch up, then
    // bound it from both sides: every observed rejection must have been
    // counted, and clean traffic must never be flagged.
    if hostile_rejected > 0 {
        wait_until(Duration::from_secs(2), || {
            net.stats().snapshot().malformed_closes >= hostile_rejected
        });
    }
    let final_net = net.stats().snapshot();
    if let Err(what) = final_net.check_conservation() {
        violations.push(Violation::new(seed, u64::MAX, what));
    }
    if final_net.malformed_closes < hostile_rejected {
        violations.push(Violation::new(
            seed,
            u64::MAX,
            format!(
                "{} hostile rejections observed but only {} malformed closes recorded",
                hostile_rejected, final_net.malformed_closes
            ),
        ));
    }
    if final_net.malformed_closes > hostile_sent {
        violations.push(Violation::new(
            seed,
            u64::MAX,
            format!(
                "{} malformed closes recorded for only {} hostile frames sent \
                 (clean traffic misflagged)",
                final_net.malformed_closes, hostile_sent
            ),
        ));
    }
    let final_metrics = metrics.snapshot();

    for slot in backends.iter_mut() {
        if let Some(mut handle) = slot.handle.take() {
            handle.stop();
        }
    }

    if config.trace_outcomes {
        trace.push(format!(
            "done ok {requests_ok} failed {requests_failed} served {backend_requests_served}"
        ));
        if hostile_sent > 0 {
            trace.push(format!(
                "hostile {hostile_sent} rejected {hostile_rejected}"
            ));
        }
    }
    let trace_hash = trace.hash();
    ScenarioReport {
        name: config.name,
        seed,
        trace,
        trace_hash,
        violations,
        requests_ok,
        requests_failed,
        backend_requests_served,
        hostile_sent,
        hostile_rejected,
        final_metrics,
        final_net,
    }
}

/// Polls `predicate` every 5 ms until it holds or `timeout` expires.
pub fn wait_until(timeout: Duration, mut predicate: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if predicate() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}
