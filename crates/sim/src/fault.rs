//! Scripted fault schedules.
//!
//! A scenario's chaos is a list of [`ScheduledFault`]s, applied at the
//! *start* of their tick, before any client acts. Because the driver runs
//! requests strictly inside a tick (send, then drain, then check), a
//! request never spans a fault boundary — which is what keeps outcome
//! traces replayable for full-outage schedules.

/// One fault the driver can inject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultOp {
    /// Kill backend `i`: sever every established connection to it, drop
    /// its listener and join its threads. Synchronous — when the driver
    /// moves on, no response from this backend can ever arrive.
    CrashBackend(usize),
    /// Bring backend `i` back on its original port.
    RestartBackend(usize),
    /// Sever every established client connection at the service port
    /// (mid-message disconnect storm from the service's point of view).
    SeverClients,
    /// Sleep `ms` with no client activity and assert the platform stays
    /// quiet: at most `max_extra_task_runs` task executions may happen
    /// while nothing is runnable (a parked output task costs zero).
    QuietCheck {
        /// Quiet-window length in milliseconds.
        ms: u64,
        /// Allowed task executions during the window.
        max_extra_task_runs: u64,
    },
    /// Deliberately book a fake ingest copy so the zero-copy gate fires —
    /// the self-test that proves violations are caught and report their
    /// seed.
    SabotageZeroCopy,
    /// Set the hostile-traffic rate to `permille / 1000` from this tick
    /// on: each client request is replaced, with that probability, by a
    /// grammar-aware mutated frame from the seeded
    /// [`crate::MessageMutator`]. Overrides the scenario's baseline
    /// `hostile` knob; `permille: 0` turns the storm off again.
    HostileTraffic {
        /// Mutation probability in thousandths (300 = 30%).
        permille: u16,
    },
}

/// A fault bound to the tick it fires on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Tick (0-based) at whose start the fault applies.
    pub tick: u64,
    /// The fault to apply.
    pub op: FaultOp,
}

impl ScheduledFault {
    /// Schedules `op` at the start of `tick`.
    pub fn at(tick: u64, op: FaultOp) -> Self {
        ScheduledFault { tick, op }
    }
}
