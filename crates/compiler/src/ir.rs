//! The slot-resolved intermediate representation and its lowering.
//!
//! Lowering resolves every variable reference to a frame slot index, every
//! function call to a function index and every channel reference to a
//! *binding* (the position of the channel parameter in the process
//! signature). The interpreter therefore performs no name lookups on the
//! data path, mirroring the static memory layout of the paper's generated
//! C++.

use crate::error::CompileError;
use flick_lang::ast::{BinOp, Block, Expr, ExprKind, Stmt, UnOp};
use flick_lang::types::Type;
use flick_lang::TypedProgram;
use std::collections::HashMap;

/// Builtin functions known to the interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `hash(x)` — a stable non-negative hash of a value.
    Hash,
    /// `len(x)` — length of a list, string, dictionary or channel array.
    Len,
    /// `empty_dict` — a fresh dictionary.
    EmptyDict,
    /// `all_ready(cs)` — whether all channels have data (treated as true).
    AllReady,
    /// `str(x)` — string conversion.
    Str,
    /// `int(x)` — integer conversion.
    Int,
}

/// A call to a user-defined function, with argument expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct IrCall {
    /// Index into [`ProgramIr::functions`].
    pub function: usize,
    /// Explicit argument expressions (the piped value, if any, is appended
    /// by the caller at run time).
    pub args: Vec<IrExpr>,
}

/// An expression with all names resolved.
#[derive(Debug, Clone, PartialEq)]
pub enum IrExpr {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// The `None` literal.
    None,
    /// Read a frame slot.
    Load(usize),
    /// Field access on a message value.
    Field(Box<IrExpr>, String),
    /// Indexing into a list, dictionary or channel array.
    Index(Box<IrExpr>, Box<IrExpr>),
    /// Binary operation.
    Binary(BinOp, Box<IrExpr>, Box<IrExpr>),
    /// Unary operation.
    Unary(UnOp, Box<IrExpr>),
    /// Call of a user-defined function.
    Call(IrCall),
    /// Call of a builtin.
    Builtin(Builtin, Vec<IrExpr>),
    /// Record construction: unit name, field names, field values.
    MakeRecord(String, Vec<String>, Vec<IrExpr>),
    /// `fold(f, init, list)`.
    Fold {
        /// Combining function index.
        function: usize,
        /// Initial accumulator.
        init: Box<IrExpr>,
        /// The list expression.
        list: Box<IrExpr>,
    },
    /// `map(f, list)`.
    Map {
        /// Mapping function index.
        function: usize,
        /// The list expression.
        list: Box<IrExpr>,
    },
    /// `filter(f, list)`.
    Filter {
        /// Predicate function index.
        function: usize,
        /// The list expression.
        list: Box<IrExpr>,
    },
}

/// A statement with all names resolved.
#[derive(Debug, Clone, PartialEq)]
pub enum IrStmt {
    /// Store the value of an expression into a frame slot (`let`, or
    /// assignment to a local).
    Store(usize, IrExpr),
    /// `dict[key] := value` (also used for list element assignment).
    AssignIndex {
        /// The dictionary/list expression.
        target: IrExpr,
        /// The key/index expression.
        index: IrExpr,
        /// The value to store.
        value: IrExpr,
    },
    /// A pipeline statement: evaluate the source, thread it through the
    /// stages, and deliver it to the sink.
    Pipeline {
        /// The source value.
        source: IrExpr,
        /// Intermediate function stages (the piped value becomes each call's
        /// final argument; the call's result is piped onwards).
        stages: Vec<IrCall>,
        /// Where the final value goes.
        sink: IrSink,
    },
    /// Conditional execution.
    If {
        /// Condition.
        cond: IrExpr,
        /// Then branch.
        then: Vec<IrStmt>,
        /// Else branch.
        els: Vec<IrStmt>,
    },
    /// Bounded iteration over a finite list.
    For {
        /// Frame slot of the loop variable.
        slot: usize,
        /// The iterated list.
        iter: IrExpr,
        /// Loop body.
        body: Vec<IrStmt>,
    },
    /// An expression evaluated for its value (the last one in a function
    /// body is the return value) or for its side effects.
    Expr(IrExpr),
}

/// Destination of a pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum IrSink {
    /// Send into a channel denoted by the expression (a channel parameter or
    /// an indexed channel array).
    Channel(IrExpr),
    /// A consuming function call (the piped value is its final argument).
    Call(IrCall),
    /// The pipeline result is discarded (used when lowering degenerate
    /// pipelines).
    Discard,
}

/// A lowered user-defined function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionIr {
    /// The function name.
    pub name: String,
    /// Number of parameters (occupying frame slots `0..params`).
    pub params: usize,
    /// Total frame size (parameters plus locals).
    pub frame_size: usize,
    /// The body.
    pub body: Vec<IrStmt>,
}

/// Direction of a process channel parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelDir {
    /// The program may read from the channel.
    pub readable: bool,
    /// The program may write to the channel.
    pub writable: bool,
}

/// A channel parameter of the process signature.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelParam {
    /// Parameter name.
    pub name: String,
    /// Whether this is an array of channels.
    pub is_array: bool,
    /// Channel direction.
    pub dir: ChannelDir,
    /// The record type carried by the channel.
    pub record: String,
}

/// A routing rule of the process body (`source => stages... => sink`).
#[derive(Debug, Clone, PartialEq)]
pub struct RouteRule {
    /// Index of the source channel parameter.
    pub source_param: usize,
    /// Intermediate stages.
    pub stages: Vec<IrCall>,
    /// Final destination.
    pub sink: IrSink,
}

/// The lowered `foldt` aggregation of a process body (Listing 3).
#[derive(Debug, Clone, PartialEq)]
pub struct FoldtIr {
    /// Index of the channel-array parameter aggregated over.
    pub source_param: usize,
    /// Index of the channel parameter receiving the aggregated stream.
    pub sink_param: usize,
    /// The message field used as the merge key (`elem.key`).
    pub key_field: String,
    /// Frame size of the combine body.
    pub frame_size: usize,
    /// Slots of the two element binders and the key binder.
    pub binder_slots: (usize, usize, usize),
    /// The combine body; its final expression is the merged element.
    pub body: Vec<IrStmt>,
}

/// The lowered process.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessIr {
    /// The process name.
    pub name: String,
    /// Channel parameters, in signature order.
    pub params: Vec<ChannelParam>,
    /// Globals declared with `global name := ...` (currently dictionaries).
    pub globals: Vec<String>,
    /// Frame layout for rule-stage argument expressions: slots `0..params`
    /// hold the channel parameters, followed by one slot per global.
    pub frame_size: usize,
    /// Routing rules, evaluated per arriving message.
    pub rules: Vec<RouteRule>,
    /// The `foldt` aggregation, if the body contains one.
    pub foldt: Option<FoldtIr>,
}

impl ProcessIr {
    /// Frame slot of global `i`.
    pub fn global_slot(&self, i: usize) -> usize {
        self.params.len() + i
    }
}

/// A fully lowered program: every function plus one process.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramIr {
    /// Lowered functions, indexed by [`IrCall::function`].
    pub functions: Vec<FunctionIr>,
    /// The lowered process.
    pub process: ProcessIr,
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

/// Lowers a typed program and one of its processes to IR.
pub fn lower(typed: &TypedProgram, proc_name: &str) -> Result<ProgramIr, CompileError> {
    let lowerer = Lowerer::new(typed);
    lowerer.lower(proc_name)
}

struct Lowerer<'a> {
    typed: &'a TypedProgram,
    fun_indices: HashMap<String, usize>,
}

struct Scope {
    slots: HashMap<String, usize>,
    next: usize,
}

impl Scope {
    fn new() -> Self {
        Scope {
            slots: HashMap::new(),
            next: 0,
        }
    }

    fn declare(&mut self, name: &str) -> usize {
        if let Some(slot) = self.slots.get(name) {
            return *slot;
        }
        let slot = self.next;
        self.next += 1;
        self.slots.insert(name.to_string(), slot);
        slot
    }

    fn lookup(&self, name: &str) -> Option<usize> {
        self.slots.get(name).copied()
    }
}

impl<'a> Lowerer<'a> {
    fn new(typed: &'a TypedProgram) -> Self {
        let fun_indices = typed
            .program
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i))
            .collect();
        Lowerer { typed, fun_indices }
    }

    fn lower(self, proc_name: &str) -> Result<ProgramIr, CompileError> {
        let functions = self
            .typed
            .program
            .functions
            .iter()
            .map(|f| self.lower_function(f))
            .collect::<Result<Vec<_>, _>>()?;
        let process = self.lower_process(proc_name)?;
        Ok(ProgramIr { functions, process })
    }

    fn lower_function(&self, decl: &flick_lang::ast::FunDecl) -> Result<FunctionIr, CompileError> {
        let mut scope = Scope::new();
        for p in &decl.params {
            scope.declare(&p.name);
        }
        let params = decl.params.len();
        let body = self.lower_block(&decl.body, &mut scope)?;
        Ok(FunctionIr {
            name: decl.name.clone(),
            params,
            frame_size: scope.next,
            body,
        })
    }

    fn lower_process(&self, proc_name: &str) -> Result<ProcessIr, CompileError> {
        let decl = self
            .typed
            .program
            .process(proc_name)
            .ok_or_else(|| CompileError::UnknownProcess(proc_name.to_string()))?;
        let sig = self
            .typed
            .process(proc_name)
            .ok_or_else(|| CompileError::UnknownProcess(proc_name.to_string()))?;
        let mut params = Vec::new();
        for (name, ty) in &sig.params {
            let (is_array, value, readable, writable) = match ty {
                Type::Channel {
                    value,
                    can_read,
                    can_write,
                } => (false, value, *can_read, *can_write),
                Type::ChannelArray {
                    value,
                    can_read,
                    can_write,
                } => (true, value, *can_read, *can_write),
                other => {
                    return Err(CompileError::Signature(format!(
                        "parameter `{name}` has non-channel type {other}"
                    )))
                }
            };
            let record = match value.as_ref() {
                Type::Record(r) => r.clone(),
                other => {
                    return Err(CompileError::Signature(format!(
                        "channel `{name}` carries {other}, which is not a declared record type"
                    )))
                }
            };
            params.push(ChannelParam {
                name: name.clone(),
                is_array,
                dir: ChannelDir { readable, writable },
                record,
            });
        }
        if params.is_empty() {
            return Err(CompileError::Signature(
                "a process needs at least one channel".into(),
            ));
        }

        // Frame: channel params first, then globals.
        let mut scope = Scope::new();
        for p in &params {
            scope.declare(&p.name);
        }
        let mut globals = Vec::new();
        let mut rules = Vec::new();
        let mut foldt = None;
        self.lower_proc_block(
            &decl.body,
            &params,
            &mut scope,
            &mut globals,
            &mut rules,
            &mut foldt,
        )?;
        Ok(ProcessIr {
            name: decl.name.clone(),
            frame_size: scope.next,
            params,
            globals,
            rules,
            foldt,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_proc_block(
        &self,
        block: &Block,
        params: &[ChannelParam],
        scope: &mut Scope,
        globals: &mut Vec<String>,
        rules: &mut Vec<RouteRule>,
        foldt: &mut Option<FoldtIr>,
    ) -> Result<(), CompileError> {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Global { name, .. } => {
                    scope.declare(name);
                    globals.push(name.clone());
                }
                Stmt::Pipeline { stages, .. } => {
                    rules.push(self.lower_rule(stages, params, scope)?);
                }
                Stmt::If { then, els, .. } => {
                    // Guards such as `all_ready(mappers)` wrap the foldt
                    // aggregation; the runtime's merge logic subsumes them.
                    self.lower_proc_block(then, params, scope, globals, rules, foldt)?;
                    if let Some(els) = els {
                        self.lower_proc_block(els, params, scope, globals, rules, foldt)?;
                    }
                }
                Stmt::Let { name, value, .. } => {
                    if let ExprKind::Foldt { channels, order_key, binders, key_name, body, .. } = &value.kind {
                        let slot = scope.declare(name);
                        *foldt = Some(self.lower_foldt(
                            channels, order_key, binders, key_name, body, params, scope,
                        )?);
                        // The result binding is recorded so that a following
                        // `result => reducer` pipeline resolves; the actual
                        // routing is performed by the foldt logic itself.
                        let _ = slot;
                    } else {
                        let slot = scope.declare(name);
                        let _ = slot;
                    }
                }
                other => {
                    return Err(CompileError::Unsupported(format!(
                        "process bodies support globals, pipelines, conditionals and foldt; found {other:?}"
                    )))
                }
            }
        }
        Ok(())
    }

    fn lower_rule(
        &self,
        stages: &[Expr],
        params: &[ChannelParam],
        scope: &mut Scope,
    ) -> Result<RouteRule, CompileError> {
        let source = &stages[0];
        let source_name = source.as_ident().ok_or_else(|| {
            CompileError::Unsupported("a routing rule must start from a channel parameter".into())
        })?;
        let source_param = params.iter().position(|p| p.name == source_name);
        let Some(source_param) = source_param else {
            // Not a channel source: this is a value pipeline such as
            // `result => reducer` following a foldt; the foldt logic already
            // routes its output, so the rule is dropped here.
            return Ok(RouteRule {
                source_param: usize::MAX,
                stages: Vec::new(),
                sink: IrSink::Discard,
            });
        };
        let mut calls = Vec::new();
        for stage in &stages[1..stages.len() - 1] {
            calls.push(self.lower_stage_call(stage, scope)?);
        }
        let last = stages.last().expect("pipeline has at least two stages");
        let sink = match &last.kind {
            ExprKind::Call { .. } => IrSink::Call(self.lower_stage_call(last, scope)?),
            _ => IrSink::Channel(self.lower_expr(last, scope)?),
        };
        Ok(RouteRule {
            source_param,
            stages: calls,
            sink,
        })
    }

    fn lower_stage_call(&self, expr: &Expr, scope: &mut Scope) -> Result<IrCall, CompileError> {
        match &expr.kind {
            ExprKind::Call { name, args } => {
                let function = *self.fun_indices.get(name).ok_or_else(|| {
                    CompileError::Unsupported(format!("unknown function `{name}` in pipeline"))
                })?;
                let args = args
                    .iter()
                    .map(|a| self.lower_expr(a, scope))
                    .collect::<Result<_, _>>()?;
                Ok(IrCall { function, args })
            }
            _ => Err(CompileError::Unsupported(
                "pipeline stages must be function calls".into(),
            )),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_foldt(
        &self,
        channels: &Expr,
        order_key: &Expr,
        binders: &(String, String),
        key_name: &str,
        body: &Block,
        params: &[ChannelParam],
        scope: &mut Scope,
    ) -> Result<FoldtIr, CompileError> {
        let source_name = channels.as_ident().ok_or_else(|| {
            CompileError::Unsupported("foldt must aggregate over a channel-array parameter".into())
        })?;
        let source_param = params
            .iter()
            .position(|p| p.name == source_name)
            .ok_or_else(|| {
                CompileError::Unsupported(format!("unknown channel array `{source_name}`"))
            })?;
        // The sink is the (single) writable scalar channel parameter.
        let sink_param = params
            .iter()
            .position(|p| !p.is_array && p.dir.writable)
            .ok_or_else(|| {
                CompileError::Signature("foldt needs a writable output channel".into())
            })?;
        let key_field = match &order_key.kind {
            ExprKind::Field(_, field) => field.clone(),
            _ => {
                return Err(CompileError::Unsupported(
                    "the foldt ordering key must be a field of the element".into(),
                ))
            }
        };
        // The combine body runs in its own frame: binders first, then key.
        let mut body_scope = Scope::new();
        let b1 = body_scope.declare(&binders.0);
        let b2 = body_scope.declare(&binders.1);
        let key = body_scope.declare(key_name);
        let body = self.lower_block(body, &mut body_scope)?;
        let _ = scope;
        Ok(FoldtIr {
            source_param,
            sink_param,
            key_field,
            frame_size: body_scope.next,
            binder_slots: (b1, b2, key),
            body,
        })
    }

    fn lower_block(&self, block: &Block, scope: &mut Scope) -> Result<Vec<IrStmt>, CompileError> {
        let mut out = Vec::new();
        for stmt in &block.stmts {
            match stmt {
                Stmt::Global { .. } => {
                    return Err(CompileError::Unsupported(
                        "`global` declarations are only allowed directly in a process body".into(),
                    ))
                }
                Stmt::Let { name, value, .. } => {
                    let value = self.lower_expr(value, scope)?;
                    let slot = scope.declare(name);
                    out.push(IrStmt::Store(slot, value));
                }
                Stmt::Assign { target, value, .. } => match &target.kind {
                    ExprKind::Index(base, index) => out.push(IrStmt::AssignIndex {
                        target: self.lower_expr(base, scope)?,
                        index: self.lower_expr(index, scope)?,
                        value: self.lower_expr(value, scope)?,
                    }),
                    ExprKind::Ident(name) => {
                        let value = self.lower_expr(value, scope)?;
                        let slot = scope.declare(name);
                        out.push(IrStmt::Store(slot, value));
                    }
                    _ => {
                        return Err(CompileError::Unsupported(
                            "unsupported assignment target".into(),
                        ))
                    }
                },
                Stmt::Pipeline { stages, .. } => {
                    let source = self.lower_expr(&stages[0], scope)?;
                    let mut calls = Vec::new();
                    for stage in &stages[1..stages.len() - 1] {
                        calls.push(self.lower_stage_call(stage, scope)?);
                    }
                    let last = stages.last().expect("pipeline has at least two stages");
                    let sink = match &last.kind {
                        ExprKind::Call { .. } => IrSink::Call(self.lower_stage_call(last, scope)?),
                        _ => IrSink::Channel(self.lower_expr(last, scope)?),
                    };
                    out.push(IrStmt::Pipeline {
                        source,
                        stages: calls,
                        sink,
                    });
                }
                Stmt::If {
                    cond, then, els, ..
                } => {
                    let cond = self.lower_expr(cond, scope)?;
                    let then = self.lower_block(then, scope)?;
                    let els = match els {
                        Some(block) => self.lower_block(block, scope)?,
                        None => Vec::new(),
                    };
                    out.push(IrStmt::If { cond, then, els });
                }
                Stmt::For {
                    var, iter, body, ..
                } => {
                    let iter = self.lower_expr(iter, scope)?;
                    let slot = scope.declare(var);
                    let body = self.lower_block(body, scope)?;
                    out.push(IrStmt::For { slot, iter, body });
                }
                Stmt::Expr { expr, .. } => out.push(IrStmt::Expr(self.lower_expr(expr, scope)?)),
            }
        }
        Ok(out)
    }

    fn lower_expr(&self, expr: &Expr, scope: &mut Scope) -> Result<IrExpr, CompileError> {
        Ok(match &expr.kind {
            ExprKind::Int(v) => IrExpr::Int(*v),
            ExprKind::Str(s) => IrExpr::Str(s.clone()),
            ExprKind::Bool(b) => IrExpr::Bool(*b),
            ExprKind::None => IrExpr::None,
            ExprKind::Ident(name) => match scope.lookup(name) {
                Some(slot) => IrExpr::Load(slot),
                None if name == "empty_dict" => IrExpr::Builtin(Builtin::EmptyDict, vec![]),
                None => {
                    return Err(CompileError::Unsupported(format!(
                        "unresolved variable `{name}`"
                    )))
                }
            },
            ExprKind::Field(base, field) => {
                IrExpr::Field(Box::new(self.lower_expr(base, scope)?), field.clone())
            }
            ExprKind::Index(base, index) => IrExpr::Index(
                Box::new(self.lower_expr(base, scope)?),
                Box::new(self.lower_expr(index, scope)?),
            ),
            ExprKind::Binary { op, lhs, rhs } => IrExpr::Binary(
                *op,
                Box::new(self.lower_expr(lhs, scope)?),
                Box::new(self.lower_expr(rhs, scope)?),
            ),
            ExprKind::Unary { op, operand } => {
                IrExpr::Unary(*op, Box::new(self.lower_expr(operand, scope)?))
            }
            ExprKind::Call { name, args } => self.lower_call(name, args, scope)?,
            ExprKind::Foldt { .. } => {
                return Err(CompileError::Unsupported(
                    "foldt may only appear at the top level of a process body".into(),
                ))
            }
        })
    }

    fn lower_call(
        &self,
        name: &str,
        args: &[Expr],
        scope: &mut Scope,
    ) -> Result<IrExpr, CompileError> {
        // Record constructor.
        if let Some(record) = self.typed.record(name) {
            let field_names: Vec<String> = record
                .named_fields()
                .filter_map(|f| f.name.clone())
                .collect();
            let values = args
                .iter()
                .map(|a| self.lower_expr(a, scope))
                .collect::<Result<_, _>>()?;
            return Ok(IrExpr::MakeRecord(name.to_string(), field_names, values));
        }
        // Higher-order builtins take a function name first.
        if matches!(name, "fold" | "map" | "filter") {
            let fun_name = args[0].as_ident().ok_or_else(|| {
                CompileError::Unsupported(format!("`{name}` needs a function name"))
            })?;
            let function = *self.fun_indices.get(fun_name).ok_or_else(|| {
                CompileError::Unsupported(format!("unknown function `{fun_name}`"))
            })?;
            return Ok(match name {
                "fold" => IrExpr::Fold {
                    function,
                    init: Box::new(self.lower_expr(&args[1], scope)?),
                    list: Box::new(self.lower_expr(&args[2], scope)?),
                },
                "map" => IrExpr::Map {
                    function,
                    list: Box::new(self.lower_expr(&args[1], scope)?),
                },
                _ => IrExpr::Filter {
                    function,
                    list: Box::new(self.lower_expr(&args[1], scope)?),
                },
            });
        }
        let builtin = match name {
            "hash" => Some(Builtin::Hash),
            "len" | "size" => Some(Builtin::Len),
            "empty_dict" => Some(Builtin::EmptyDict),
            "all_ready" => Some(Builtin::AllReady),
            "str" => Some(Builtin::Str),
            "int" => Some(Builtin::Int),
            _ => None,
        };
        let lowered_args: Vec<IrExpr> = args
            .iter()
            .map(|a| self.lower_expr(a, scope))
            .collect::<Result<_, _>>()?;
        if let Some(builtin) = builtin {
            return Ok(IrExpr::Builtin(builtin, lowered_args));
        }
        let function = *self
            .fun_indices
            .get(name)
            .ok_or_else(|| CompileError::Unsupported(format!("unknown function `{name}`")))?;
        Ok(IrExpr::Call(IrCall {
            function,
            args: lowered_args,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_lang::compile_to_ast;

    const PROXY: &str = r#"
type cmd: record
  key : string

proc Memcached: (cmd/cmd client, [cmd/cmd] backends)
  backends => client
  client => target_backend(backends)

fun target_backend: ([-/cmd] backends, req: cmd) -> ()
  let target = hash(req.key) mod len(backends)
  req => backends[target]
"#;

    #[test]
    fn lowers_memcached_proxy() {
        let typed = compile_to_ast(PROXY).unwrap();
        let ir = lower(&typed, "Memcached").unwrap();
        assert_eq!(ir.functions.len(), 1);
        assert_eq!(ir.process.params.len(), 2);
        assert!(ir.process.params[1].is_array);
        assert_eq!(ir.process.rules.len(), 2);
        // Rule 0: backends => client (no stages, channel sink).
        assert_eq!(ir.process.rules[0].source_param, 1);
        assert!(ir.process.rules[0].stages.is_empty());
        assert!(matches!(
            ir.process.rules[0].sink,
            IrSink::Channel(IrExpr::Load(0))
        ));
        // Rule 1: client => target_backend(backends) (call sink).
        assert_eq!(ir.process.rules[1].source_param, 0);
        assert!(matches!(ir.process.rules[1].sink, IrSink::Call(_)));
        // Function frame: 2 params + 1 local.
        let f = &ir.functions[0];
        assert_eq!(f.params, 2);
        assert_eq!(f.frame_size, 3);
        assert!(matches!(f.body[0], IrStmt::Store(2, _)));
        assert!(matches!(f.body[1], IrStmt::Pipeline { .. }));
    }

    #[test]
    fn lowers_cache_router_with_global() {
        let src = r#"
type cmd: record
  opcode : integer {signed=false, size=1}
  keylen : integer {signed=false, size=2}
  key : string {size=keylen}

proc memcached: (cmd/cmd client, [cmd/cmd] backends)
  global cache := empty_dict
  backends => update_cache(cache) => client
  client => test_cache(client, backends, cache)

fun update_cache: (cache: ref dict<string*cmd>, resp: cmd) -> (cmd)
  if resp.opcode = 12:
    cache[resp.key] := resp
  resp

fun test_cache: (-/cmd client, [-/cmd] backends, cache: ref dict<string*cmd>, req: cmd) -> ()
  if cache[req.key] = None or req.opcode <> 12:
    let target = hash(req.key) mod len(backends)
    req => backends[target]
  else:
    cache[req.key] => client
"#;
        let typed = compile_to_ast(src).unwrap();
        let ir = lower(&typed, "memcached").unwrap();
        assert_eq!(ir.process.globals, vec!["cache".to_string()]);
        assert_eq!(ir.process.frame_size, 3, "client, backends, cache");
        assert_eq!(ir.process.rules.len(), 2);
        assert_eq!(ir.process.rules[0].stages.len(), 1, "update_cache stage");
        let update = ir
            .functions
            .iter()
            .find(|f| f.name == "update_cache")
            .unwrap();
        assert!(matches!(update.body[0], IrStmt::If { .. }));
        assert!(matches!(update.body[1], IrStmt::Expr(IrExpr::Load(1))));
    }

    #[test]
    fn lowers_hadoop_foldt() {
        let src = r#"
type kv: record
  key : string
  value : string

proc hadoop: ([kv/-] mappers, -/kv reducer):
  if all_ready(mappers):
    let result = foldt on mappers ordering elem e1, e2 by elem.key as e_key:
      let v = combine(e1.value, e2.value)
      kv(e_key, v)
    result => reducer

fun combine: (v1: string, v2: string) -> (string)
  v1 + v2
"#;
        let typed = compile_to_ast(src).unwrap();
        let ir = lower(&typed, "hadoop").unwrap();
        let foldt = ir.process.foldt.as_ref().expect("foldt lowered");
        assert_eq!(foldt.source_param, 0);
        assert_eq!(foldt.sink_param, 1);
        assert_eq!(foldt.key_field, "key");
        assert_eq!(foldt.binder_slots, (0, 1, 2));
        assert!(matches!(
            foldt.body.last(),
            Some(IrStmt::Expr(IrExpr::MakeRecord(_, _, _)))
        ));
    }

    #[test]
    fn unknown_process_is_an_error() {
        let typed = compile_to_ast(PROXY).unwrap();
        assert!(matches!(
            lower(&typed, "nope"),
            Err(CompileError::UnknownProcess(_))
        ));
    }

    #[test]
    fn fold_map_filter_lower_to_dedicated_nodes() {
        let src = r#"
fun add: (acc: integer, x: integer) -> (integer)
  acc + x

fun double: (x: integer) -> (integer)
  x * 2

fun total: (xs: [integer]) -> (integer)
  fold(add, 0, map(double, xs))

type t: record
  key : string

proc P: (t/t c)
  c => c
"#;
        let typed = compile_to_ast(src).unwrap();
        let ir = lower(&typed, "P").unwrap();
        let total = ir.functions.iter().find(|f| f.name == "total").unwrap();
        match &total.body[0] {
            IrStmt::Expr(IrExpr::Fold { list, .. }) => {
                assert!(matches!(**list, IrExpr::Map { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
