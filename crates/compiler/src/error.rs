//! Compiler error type.

use flick_lang::LangError;
use std::fmt;

/// Errors produced while compiling a FLICK program to a task-graph factory.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// A front-end (parse/type/semantic) error.
    Lang(LangError),
    /// The requested process does not exist in the program.
    UnknownProcess(String),
    /// The process signature cannot be mapped onto the runtime (for example
    /// no channel parameters, or an unsupported parameter shape).
    Signature(String),
    /// A construct is not supported by this code generator.
    Unsupported(String),
    /// No wire codec could be found or synthesised for a data type.
    MissingCodec(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Lang(e) => write!(f, "{e}"),
            CompileError::UnknownProcess(name) => {
                write!(f, "process `{name}` is not defined in the program")
            }
            CompileError::Signature(msg) => write!(f, "unsupported process signature: {msg}"),
            CompileError::Unsupported(msg) => write!(f, "unsupported construct: {msg}"),
            CompileError::MissingCodec(ty) => {
                write!(f, "no wire codec available for type `{ty}`: add serialisation annotations or register a codec")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<LangError> for CompileError {
    fn from(e: LangError) -> Self {
        CompileError::Lang(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CompileError::UnknownProcess("p".into())
            .to_string()
            .contains("`p`"));
        assert!(CompileError::MissingCodec("cmd".into())
            .to_string()
            .contains("cmd"));
        assert!(CompileError::Signature("x".into())
            .to_string()
            .contains("signature"));
    }
}
