//! Compiler error type and located runtime diagnostics.
//!
//! Besides the compile-time [`CompileError`], this module carries the
//! helpers both executors use to attach an execution location to runtime
//! logic errors: the interpreter names the failing IR node (`fn` + `stmt`
//! path), the bytecode VM names the program counter (`fn` + `pc`). The
//! annotation format is shared so diagnostics from the two execution
//! modes are directly comparable (the differential proptest strips the
//! location with [`split_located`] and asserts the base messages agree).

use flick_lang::LangError;
use flick_runtime::RuntimeError;
use std::fmt;

/// The separator introducing an execution location in a logic-error
/// message: `"division by zero [at fn \`f\`, stmt 2]"`.
const LOCATION_MARKER: &str = " [at ";

/// Attaches a location to a [`RuntimeError::Logic`] message unless one is
/// already present — the innermost annotation wins, so nested evaluation
/// keeps the deepest (most precise) location. Non-logic errors pass
/// through untouched.
pub fn locate(err: RuntimeError, location: impl FnOnce() -> String) -> RuntimeError {
    match err {
        RuntimeError::Logic(msg) if !msg.contains(LOCATION_MARKER) => {
            RuntimeError::Logic(format!("{msg}{LOCATION_MARKER}{}]", location()))
        }
        other => other,
    }
}

/// Prefixes the enclosing function name onto an existing location that
/// does not name one yet (`"… [at stmt 2]"` → `"… [at fn \`f\`, stmt 2]"`),
/// or attaches a bare `fn` location if the error carries none. Errors
/// already naming a function (raised inside a callee) pass through, so
/// the innermost frame wins.
pub fn locate_frame(err: RuntimeError, function: &str) -> RuntimeError {
    match err {
        RuntimeError::Logic(msg) => match msg.rfind(LOCATION_MARKER) {
            Some(at) if msg[at..].contains("fn `") => RuntimeError::Logic(msg),
            Some(at) => {
                let split = at + LOCATION_MARKER.len();
                RuntimeError::Logic(format!(
                    "{}fn `{function}`, {}",
                    &msg[..split],
                    &msg[split..]
                ))
            }
            None => RuntimeError::Logic(format!("{msg}{LOCATION_MARKER}fn `{function}`]")),
        },
        other => other,
    }
}

/// Splits a logic-error message into its base diagnostic and the optional
/// execution location (without the surrounding `[at …]`).
pub fn split_located(message: &str) -> (&str, Option<&str>) {
    match message.rfind(LOCATION_MARKER) {
        Some(at) if message.ends_with(']') => {
            let location = &message[at + LOCATION_MARKER.len()..message.len() - 1];
            (&message[..at], Some(location))
        }
        _ => (message, None),
    }
}

/// Errors produced while compiling a FLICK program to a task-graph factory.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// A front-end (parse/type/semantic) error.
    Lang(LangError),
    /// The requested process does not exist in the program.
    UnknownProcess(String),
    /// The process signature cannot be mapped onto the runtime (for example
    /// no channel parameters, or an unsupported parameter shape).
    Signature(String),
    /// A construct is not supported by this code generator.
    Unsupported(String),
    /// No wire codec could be found or synthesised for a data type.
    MissingCodec(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Lang(e) => write!(f, "{e}"),
            CompileError::UnknownProcess(name) => {
                write!(f, "process `{name}` is not defined in the program")
            }
            CompileError::Signature(msg) => write!(f, "unsupported process signature: {msg}"),
            CompileError::Unsupported(msg) => write!(f, "unsupported construct: {msg}"),
            CompileError::MissingCodec(ty) => {
                write!(f, "no wire codec available for type `{ty}`: add serialisation annotations or register a codec")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<LangError> for CompileError {
    fn from(e: LangError) -> Self {
        CompileError::Lang(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CompileError::UnknownProcess("p".into())
            .to_string()
            .contains("`p`"));
        assert!(CompileError::MissingCodec("cmd".into())
            .to_string()
            .contains("cmd"));
        assert!(CompileError::Signature("x".into())
            .to_string()
            .contains("signature"));
    }

    #[test]
    fn locate_annotates_once_and_splits_back() {
        let err = locate(RuntimeError::Logic("division by zero".into()), || {
            "stmt 2".into()
        });
        let again = locate(err, || "stmt 9".into());
        let RuntimeError::Logic(msg) = &again else {
            panic!("logic error expected");
        };
        assert_eq!(msg, "division by zero [at stmt 2]");
        assert_eq!(split_located(msg), ("division by zero", Some("stmt 2")));
        assert_eq!(split_located("plain"), ("plain", None));
    }

    #[test]
    fn locate_frame_names_the_innermost_function() {
        let err = locate(RuntimeError::Logic("modulo by zero".into()), || {
            "stmt 1".into()
        });
        let inner = locate_frame(err, "inner");
        let outer = locate_frame(inner, "outer");
        let RuntimeError::Logic(msg) = &outer else {
            panic!("logic error expected");
        };
        assert_eq!(msg, "modulo by zero [at fn `inner`, stmt 1]");
        let bare = locate_frame(RuntimeError::Logic("boom".into()), "f");
        assert_eq!(bare, RuntimeError::Logic("boom [at fn `f`]".into()));
        // Non-logic errors pass through untouched.
        let other = locate_frame(RuntimeError::ChannelClosed, "f");
        assert_eq!(other, RuntimeError::ChannelClosed);
    }
}
