//! Assembling compiled FLICK programs into deployable graph factories.
//!
//! A [`CompiledService`] implements the runtime's `GraphFactory` trait. The
//! convention for binding a process signature to the network is:
//!
//! * the **first** channel parameter binds to the inbound client
//!   connection(s) accepted by the application dispatcher (a channel-array
//!   first parameter, as in the Hadoop aggregator, binds to
//!   [`CompileOptions::client_connections`] inbound connections per graph);
//! * every **subsequent** channel parameter binds to outbound back-end
//!   connections: an array parameter takes one connection per configured
//!   back-end, a scalar parameter takes the next back-end in order.
//!
//! Wire codecs are chosen per record type: synthesised from the type's
//! serialisation annotations when possible, otherwise taken from the
//! [`CompileOptions::codecs`] registry (pre-populated with the framework's
//! reusable HTTP, Memcached and Hadoop grammars).

use crate::bytecode::{self, CompiledProgram};
use crate::error::CompileError;
use crate::grammar_gen;
use crate::ir::{lower, ProgramIr};
use crate::logic::{ChannelBindings, CompiledGlobals, FoldtLogic, InterpreterLogic, ParamBinding};
use crate::projection;
use crate::vm::VmLogic;
use flick_grammar::{
    hadoop::HadoopKvCodec, http::HttpCodec, memcached::MemcachedCodec, Projection, WireCodec,
};
use flick_lang::TypedProgram;
use flick_net::Endpoint;
use flick_runtime::platform::BuiltGraph;
use flick_runtime::tasks::{ExecMode, InputTask, OutputTask};
use flick_runtime::{
    ComputeTask, GraphBuilder, GraphFactory, RuntimeError, ServiceEnv, TaskId, Watch,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Options controlling compilation and deployment binding.
#[derive(Clone)]
pub struct CompileOptions {
    /// Registry mapping record type names to protocol codecs, consulted when
    /// a type carries no serialisation annotations.
    pub codecs: HashMap<String, Arc<dyn WireCodec>>,
    /// Number of inbound client connections per graph when the first channel
    /// parameter is an array (e.g. the number of Hadoop mappers).
    pub client_connections: usize,
}

impl std::fmt::Debug for CompileOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompileOptions")
            .field("codecs", &self.codecs.keys().collect::<Vec<_>>())
            .field("client_connections", &self.client_connections)
            .finish()
    }
}

impl Default for CompileOptions {
    fn default() -> Self {
        let mut codecs: HashMap<String, Arc<dyn WireCodec>> = HashMap::new();
        // The framework provides reusable grammars for common protocols
        // (§4.2); the conventional FLICK type names map onto them.
        codecs.insert("cmd".into(), Arc::new(MemcachedCodec::new()));
        codecs.insert("kv".into(), Arc::new(HadoopKvCodec::new()));
        codecs.insert("http".into(), Arc::new(HttpCodec::new()));
        codecs.insert("request".into(), Arc::new(HttpCodec::new()));
        CompileOptions {
            codecs,
            client_connections: 1,
        }
    }
}

impl CompileOptions {
    /// Registers (or overrides) the codec used for a record type.
    pub fn with_codec(mut self, type_name: impl Into<String>, codec: Arc<dyn WireCodec>) -> Self {
        self.codecs.insert(type_name.into(), codec);
        self
    }

    /// Sets the number of inbound connections per graph for array-typed
    /// client parameters.
    pub fn with_client_connections(mut self, n: usize) -> Self {
        self.client_connections = n.max(1);
        self
    }
}

/// Per-parameter compiled artefacts.
struct ParamPlan {
    codec: Arc<dyn WireCodec>,
    projection: Projection,
}

/// A compiled FLICK service, deployable on the platform.
pub struct CompiledService {
    program: Arc<ProgramIr>,
    /// The bytecode lowering of `program`, executed when the deployment
    /// environment selects `ExecMode::Vm` (the default).
    compiled: Arc<CompiledProgram>,
    globals: Arc<CompiledGlobals>,
    plans: Vec<ParamPlan>,
    client_connections: usize,
}

impl std::fmt::Debug for CompiledService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledService")
            .field("process", &self.program.process.name)
            .finish()
    }
}

impl CompiledService {
    /// Compiles `proc_name` of the typed program.
    pub fn compile(
        typed: &TypedProgram,
        proc_name: &str,
        options: &CompileOptions,
    ) -> Result<Self, CompileError> {
        let program = Arc::new(lower(typed, proc_name)?);
        let globals = CompiledGlobals::for_process(&program.process);
        let mut plans = Vec::new();
        let mut layouts: Vec<(String, Vec<String>)> = Vec::new();
        for param in &program.process.params {
            let record = typed
                .record(&param.record)
                .ok_or_else(|| CompileError::MissingCodec(param.record.clone()))?;
            let codec: Arc<dyn WireCodec> = if grammar_gen::can_synthesise(record) {
                Arc::new(grammar_gen::synthesise(record)?)
            } else if let Some(codec) = options.codecs.get(&param.record) {
                Arc::clone(codec)
            } else {
                return Err(CompileError::MissingCodec(param.record.clone()));
            };
            let proj = projection::derive(typed, &param.record);
            if !layouts.iter().any(|(name, _)| *name == param.record) {
                // The grammar's field layout for this record, restricted
                // to the fields the projection materialises — the parse
                // order messages of this unit carry at run time. Seeds the
                // VM's field-offset sites (verified per message, so codecs
                // with a different emission order stay correct).
                let fields: Vec<String> = record
                    .fields
                    .iter()
                    .filter_map(|f| f.name.clone())
                    .filter(|name| proj.requires(name))
                    .collect();
                layouts.push((param.record.clone(), fields));
            }
            plans.push(ParamPlan {
                codec,
                projection: proj,
            });
        }
        let compiled = Arc::new(bytecode::compile_with_layouts(&program, &layouts));
        Ok(CompiledService {
            program,
            compiled,
            globals,
            plans,
            client_connections: options.client_connections,
        })
    }

    /// The name of the compiled process.
    pub fn process_name(&self) -> &str {
        &self.program.process.name
    }

    /// The lowered program (for inspection and tests).
    pub fn program(&self) -> &Arc<ProgramIr> {
        &self.program
    }

    /// The bytecode lowering of the program (for inspection, benches and
    /// tests).
    pub fn compiled(&self) -> &Arc<CompiledProgram> {
        &self.compiled
    }

    /// The per-service globals.
    pub fn globals(&self) -> &Arc<CompiledGlobals> {
        &self.globals
    }

    /// Whether this service aggregates with `foldt`.
    pub fn is_foldt(&self) -> bool {
        self.program.process.foldt.is_some()
    }
}

impl GraphFactory for CompiledService {
    fn connections_per_graph(&self) -> usize {
        if self
            .program
            .process
            .params
            .first()
            .map(|p| p.is_array)
            .unwrap_or(false)
        {
            self.client_connections
        } else {
            1
        }
    }

    fn build(&self, clients: Vec<Endpoint>, env: &ServiceEnv) -> Result<BuiltGraph, RuntimeError> {
        let process = &self.program.process;
        let mut builder = GraphBuilder::new(process.name.clone(), &env.allocator)
            .with_channel_capacity(env.channel_capacity);
        let compute_node = builder.declare_node();

        let mut bindings = ChannelBindings::default();
        let mut compute_inputs = Vec::new();
        let mut compute_outputs = Vec::new();
        let mut installs: Vec<(flick_runtime::NodeId, Box<dyn flick_runtime::Task>)> = Vec::new();
        let mut watchers: Vec<Watch> = Vec::new();
        let mut client_tasks: Vec<TaskId> = Vec::new();

        // Helper that wires one endpoint to the compute task according to the
        // parameter's direction, returning the (input, output) indices used.
        let wire_endpoint =
            |builder: &mut GraphBuilder<'_>,
             endpoint: &Endpoint,
             plan: &ParamPlan,
             readable: bool,
             writable: bool,
             label: &str,
             is_client: bool,
             compute_inputs: &mut Vec<flick_runtime::ChannelConsumer>,
             compute_outputs: &mut Vec<flick_runtime::ChannelProducer>,
             installs: &mut Vec<(flick_runtime::NodeId, Box<dyn flick_runtime::Task>)>,
             watchers: &mut Vec<Watch>,
             client_tasks: &mut Vec<TaskId>|
             -> (Option<usize>, Option<usize>) {
                let mut input_idx = None;
                let mut output_idx = None;
                if readable {
                    let node = builder.declare_node();
                    let (tx, rx) = builder.channel(compute_node);
                    installs.push((
                        node,
                        Box::new(InputTask::new(
                            format!("{label}-in"),
                            endpoint.clone(),
                            Arc::clone(&plan.codec),
                            Some(plan.projection.clone()),
                            tx,
                        )),
                    ));
                    watchers.push(Watch::readable(node.task_id(), endpoint.clone()));
                    if is_client {
                        client_tasks.push(node.task_id());
                    }
                    input_idx = Some(compute_inputs.len());
                    compute_inputs.push(rx);
                }
                if writable {
                    let node = builder.declare_node();
                    let (tx, rx) = builder.channel(node);
                    let mut out_task = OutputTask::new(
                        format!("{label}-out"),
                        endpoint.clone(),
                        Arc::clone(&plan.codec),
                        rx,
                    );
                    out_task.set_mode(env.output_mode);
                    installs.push((node, Box::new(out_task)));
                    watchers.push(Watch::writable(node.task_id(), endpoint.clone()));
                    output_idx = Some(compute_outputs.len());
                    compute_outputs.push(tx);
                }
                (input_idx, output_idx)
            };

        let mut backend_cursor = 0usize;
        let mut clients = clients;
        for (param_idx, param) in process.params.iter().enumerate() {
            let plan = &self.plans[param_idx];
            let mut binding = ParamBinding::default();
            if param_idx == 0 {
                // Client-facing parameter: one endpoint per accepted connection.
                let endpoints: Vec<Endpoint> = std::mem::take(&mut clients);
                for (i, endpoint) in endpoints.iter().enumerate() {
                    let (inp, out) = wire_endpoint(
                        &mut builder,
                        endpoint,
                        plan,
                        param.dir.readable,
                        param.dir.writable,
                        &format!("{}-{i}", param.name),
                        true,
                        &mut compute_inputs,
                        &mut compute_outputs,
                        &mut installs,
                        &mut watchers,
                        &mut client_tasks,
                    );
                    if let Some(i) = inp {
                        binding.inputs.push(i);
                    }
                    if let Some(o) = out {
                        binding.outputs.push(o);
                    }
                }
            } else {
                // Back-end parameter(s): outbound connections.
                let indices: Vec<usize> = if param.is_array {
                    (0..env.backends.len()).collect()
                } else {
                    let idx = backend_cursor;
                    backend_cursor += 1;
                    vec![idx]
                };
                if indices.is_empty() || indices.iter().any(|i| *i >= env.backends.len()) {
                    return Err(RuntimeError::Config(format!(
                        "process `{}` parameter `{}` needs more back-ends than configured",
                        process.name, param.name
                    )));
                }
                for i in indices {
                    let endpoint = env.backends.checkout(i)?;
                    let (inp, out) = wire_endpoint(
                        &mut builder,
                        &endpoint,
                        plan,
                        param.dir.readable,
                        param.dir.writable,
                        &format!("{}-{i}", param.name),
                        false,
                        &mut compute_inputs,
                        &mut compute_outputs,
                        &mut installs,
                        &mut watchers,
                        &mut client_tasks,
                    );
                    if let Some(i) = inp {
                        binding.inputs.push(i);
                    }
                    if let Some(o) = out {
                        binding.outputs.push(o);
                    }
                }
            }
            bindings.params.push(binding);
        }

        // Build the compute logic: the specialised foldt merge or the
        // general per-rule dispatch, each executing on the engine the
        // environment selects (`ExecMode::Vm` bytecode by default,
        // `ExecMode::Interp` tree-walking as the ablation baseline).
        let logic: Box<dyn flick_runtime::ComputeLogic> = if let Some(foldt) = &process.foldt {
            let total_inputs = bindings.params[foldt.source_param].inputs.len();
            let sink_output = bindings.params[foldt.sink_param]
                .outputs
                .first()
                .copied()
                .ok_or_else(|| {
                    RuntimeError::Config("foldt output channel is not writable".into())
                })?;
            match env.exec_mode {
                ExecMode::Vm => Box::new(FoldtLogic::with_vm(
                    Arc::clone(&self.program),
                    Arc::clone(&self.compiled),
                    total_inputs,
                    sink_output,
                )),
                ExecMode::Interp => Box::new(FoldtLogic::new(
                    Arc::clone(&self.program),
                    total_inputs,
                    sink_output,
                )),
            }
        } else {
            match env.exec_mode {
                ExecMode::Vm => Box::new(VmLogic::new(
                    Arc::clone(&self.compiled),
                    bindings,
                    Arc::clone(&self.globals),
                )),
                ExecMode::Interp => Box::new(InterpreterLogic::new(
                    Arc::clone(&self.program),
                    bindings,
                    Arc::clone(&self.globals),
                )),
            }
        };
        builder.install(
            compute_node,
            Box::new(ComputeTask::new(
                format!("{}-compute", process.name),
                compute_inputs,
                compute_outputs,
                logic,
            )),
        );
        for (node, task) in installs {
            builder.install(node, task);
        }
        Ok(BuiltGraph {
            graph: builder.build(),
            watchers,
            initial: vec![],
            client_tasks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_runtime::{Platform, PlatformConfig, ServiceSpec};
    use std::time::Duration;

    const PROXY: &str = r#"
type cmd: record
  key : string

proc Memcached: (cmd/cmd client, [cmd/cmd] backends)
  backends => client
  client => target_backend(backends)

fun target_backend: ([-/cmd] backends, req: cmd) -> ()
  let target = hash(req.key) mod len(backends)
  req => backends[target]
"#;

    #[test]
    fn compiles_proxy_with_registry_codec() {
        let service =
            crate::compile_source(PROXY, "Memcached", &CompileOptions::default()).unwrap();
        assert_eq!(service.process_name(), "Memcached");
        assert!(!service.is_foldt());
        assert_eq!(service.connections_per_graph(), 1);
    }

    #[test]
    fn missing_codec_is_reported() {
        let src = r#"
type custom: record
  key : string

proc P: (custom/custom client)
  client => client
"#;
        let err = crate::compile_source(src, "P", &CompileOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::MissingCodec(_)));
    }

    #[test]
    fn annotated_types_get_synthesised_codecs() {
        let src = r#"
type pkt: record
  tag : integer {signed=false, size=1}
  keylen : integer {signed=false, size=2}
  key : string {size=keylen}

proc Echo: (pkt/pkt client)
  client => client
"#;
        let service = crate::compile_source(src, "Echo", &CompileOptions::default()).unwrap();
        assert_eq!(service.process_name(), "Echo");
    }

    #[test]
    fn end_to_end_compiled_echo_service() {
        // A FLICK program with a synthesised wire format, deployed on the
        // platform and exercised over the simulated network.
        let src = r#"
type pkt: record
  tag : integer {signed=false, size=1}
  keylen : integer {signed=false, size=2}
  key : string {size=keylen}

proc Echo: (pkt/pkt client)
  client => client
"#;
        let service = crate::compile_source(src, "Echo", &CompileOptions::default()).unwrap();
        let platform = Platform::new(PlatformConfig::default());
        let deployed = platform
            .deploy(ServiceSpec::new("echo", 7100, service))
            .unwrap();
        let net = platform.net();
        let client = net.connect(7100).unwrap();
        // tag=9, key="ping".
        let wire = [9u8, 0, 4, b'p', b'i', b'n', b'g'];
        client.write_all(&wire).unwrap();
        let mut buf = [0u8; 16];
        client
            .read_exact_timeout(&mut buf[..7], Duration::from_secs(5))
            .unwrap();
        assert_eq!(&buf[..7], &wire);
        drop(deployed);
    }

    #[test]
    fn exec_mode_interp_still_serves_end_to_end() {
        // The ablation switch: the same program deployed with
        // `ExecMode::Interp` runs on the tree-walking interpreter and
        // behaves identically on the wire.
        let src = r#"
type pkt: record
  tag : integer {signed=false, size=1}
  keylen : integer {signed=false, size=2}
  key : string {size=keylen}

proc Echo: (pkt/pkt client)
  client => client
"#;
        let service = crate::compile_source(src, "Echo", &CompileOptions::default()).unwrap();
        let platform = Platform::new(PlatformConfig::default());
        let deployed = platform
            .deploy(ServiceSpec::new("echo-interp", 7150, service).with_exec_mode(ExecMode::Interp))
            .unwrap();
        let net = platform.net();
        let client = net.connect(7150).unwrap();
        let wire = [3u8, 0, 2, b'h', b'i'];
        client.write_all(&wire).unwrap();
        let mut buf = [0u8; 8];
        client
            .read_exact_timeout(&mut buf[..5], Duration::from_secs(5))
            .unwrap();
        assert_eq!(&buf[..5], &wire);
        drop(deployed);
    }

    #[test]
    fn vm_mode_service_still_closes_malformed_frames() {
        // §14 behaviour is a property of the parsing layer, not the
        // execution engine: a VM-mode service (the default) fed a hostile
        // length declaration must slam the connection and draw
        // `malformed_closes`, and a clean sibling connection must still be
        // served. The 4-byte length field lets the declaration exceed the
        // 16 MiB per-field parse limit.
        let src = r#"
type pkt: record
  tag : integer {signed=false, size=1}
  keylen : integer {signed=false, size=4}
  key : string {size=keylen}

proc Echo: (pkt/pkt client)
  client => client
"#;
        let service = crate::compile_source(src, "Echo", &CompileOptions::default()).unwrap();
        let platform = Platform::new(PlatformConfig::default());
        let deployed = platform
            .deploy(ServiceSpec::new("echo-vm-hostile", 7151, service))
            .unwrap();
        let net = platform.net();
        let hostile = net.connect(7151).unwrap();
        // tag=1, keylen=0xFFFFFFFF: a 4 GiB key against the 16 MiB cap.
        hostile.write_all(&[1u8, 0xFF, 0xFF, 0xFF, 0xFF]).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while net.stats().snapshot().malformed_closes < 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "malformed close never recorded in VM mode: {:?}",
                net.stats().snapshot()
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // The service survives the poison: a well-formed frame on a fresh
        // connection still echoes.
        let clean = net.connect(7151).unwrap();
        let wire = [2u8, 0, 0, 0, 2, b'h', b'i'];
        clean.write_all(&wire).unwrap();
        let mut buf = [0u8; 8];
        clean
            .read_exact_timeout(&mut buf[..7], Duration::from_secs(5))
            .unwrap();
        assert_eq!(&buf[..7], &wire);
        drop(deployed);
    }

    #[test]
    fn end_to_end_compiled_memcached_proxy_routes_to_backend() {
        use flick_grammar::{memcached, ParseOutcome, WireCodec};
        let service =
            crate::compile_source(PROXY, "Memcached", &CompileOptions::default()).unwrap();
        let platform = Platform::new(PlatformConfig::default());
        let net = platform.net();
        // One fake backend that answers every request with a response echoing
        // the key.
        let backend_listener = net.listen(7201).unwrap();
        let backend_thread = std::thread::spawn(move || {
            let codec = memcached::MemcachedCodec::new();
            let conn = backend_listener
                .accept_timeout(Duration::from_secs(5))
                .unwrap();
            let mut buf = Vec::new();
            let mut chunk = [0u8; 4096];
            loop {
                match conn.read_timeout(&mut chunk, Duration::from_secs(5)) {
                    Ok(n) => {
                        buf.extend_from_slice(&chunk[..n]);
                        if let Ok(ParseOutcome::Complete { message, .. }) = codec.parse(&buf, None)
                        {
                            let key = message.str_field("key").unwrap_or("").as_bytes().to_vec();
                            let resp =
                                memcached::response(memcached::opcode::GETK, 0, &key, b"value!");
                            let mut out = Vec::new();
                            codec.serialize(&resp, &mut out).unwrap();
                            conn.write_all(&out).unwrap();
                            return;
                        }
                    }
                    Err(e) => panic!("backend read failed: {e}"),
                }
            }
        });
        let deployed = platform
            .deploy(ServiceSpec::new("memcached", 7200, service).with_backends(vec![7201]))
            .unwrap();

        let codec = memcached::MemcachedCodec::new();
        let client = net.connect(7200).unwrap();
        let request = memcached::request(memcached::opcode::GETK, b"user:1", b"", b"");
        let mut wire = Vec::new();
        codec.serialize(&request, &mut wire).unwrap();
        client.write_all(&wire).unwrap();

        // Read the proxied response.
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        let response = loop {
            let n = client
                .read_timeout(&mut chunk, Duration::from_secs(5))
                .unwrap();
            buf.extend_from_slice(&chunk[..n]);
            if let Ok(ParseOutcome::Complete { message, .. }) = codec.parse(&buf, None) {
                break message;
            }
        };
        assert_eq!(response.str_field("key"), Some("user:1"));
        assert_eq!(response.bytes_field("value"), Some(&b"value!"[..]));
        backend_thread.join().unwrap();
        drop(deployed);
    }
}
