//! Field-projection derivation.
//!
//! FLICK programs declare the data type with exactly the fields they need
//! (§4.2: "FLICK programs make accesses to message fields explicit by
//! declaring a FLICK data type corresponding to the message"); the full wire
//! grammar may carry many more. The projection for a record type is
//! therefore the set of named fields in the program's `type` declaration,
//! plus any fields accessed via `.field` expressions in the program (for
//! robustness when a declaration is wider than its uses).

use flick_grammar::Projection;
use flick_lang::ast::{Block, Expr, ExprKind, Stmt};
use flick_lang::TypedProgram;
use std::collections::BTreeSet;

/// Derives the projection for record type `record_name`.
pub fn derive(typed: &TypedProgram, record_name: &str) -> Projection {
    let mut fields: BTreeSet<String> = BTreeSet::new();
    if let Some(record) = typed.record(record_name) {
        for field in record.named_fields() {
            if let Some(name) = &field.name {
                fields.insert(name.clone());
            }
        }
    }
    // Also collect every field access mentioned anywhere in the program.
    for f in &typed.program.functions {
        collect_block(&f.body, &mut fields);
    }
    for p in &typed.program.processes {
        collect_block(&p.body, &mut fields);
    }
    Projection::of(fields)
}

fn collect_block(block: &Block, out: &mut BTreeSet<String>) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Global { init, .. } => collect_expr(init, out),
            Stmt::Let { value, .. } => collect_expr(value, out),
            Stmt::Assign { target, value, .. } => {
                collect_expr(target, out);
                collect_expr(value, out);
            }
            Stmt::Pipeline { stages, .. } => stages.iter().for_each(|s| collect_expr(s, out)),
            Stmt::If {
                cond, then, els, ..
            } => {
                collect_expr(cond, out);
                collect_block(then, out);
                if let Some(e) = els {
                    collect_block(e, out);
                }
            }
            Stmt::For { iter, body, .. } => {
                collect_expr(iter, out);
                collect_block(body, out);
            }
            Stmt::Expr { expr, .. } => collect_expr(expr, out),
        }
    }
}

fn collect_expr(expr: &Expr, out: &mut BTreeSet<String>) {
    match &expr.kind {
        ExprKind::Field(base, field) => {
            out.insert(field.clone());
            collect_expr(base, out);
        }
        ExprKind::Index(base, idx) => {
            collect_expr(base, out);
            collect_expr(idx, out);
        }
        ExprKind::Call { args, .. } => args.iter().for_each(|a| collect_expr(a, out)),
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_expr(lhs, out);
            collect_expr(rhs, out);
        }
        ExprKind::Unary { operand, .. } => collect_expr(operand, out),
        ExprKind::Foldt {
            channels,
            order_key,
            body,
            ..
        } => {
            collect_expr(channels, out);
            collect_expr(order_key, out);
            collect_block(body, out);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_lang::compile_to_ast;

    #[test]
    fn projection_includes_declared_and_accessed_fields() {
        let src = r#"
type cmd: record
  opcode : integer {size=1}
  key : string

proc P: (cmd/cmd client, [cmd/cmd] backends)
  client => route(backends)

fun route: ([-/cmd] backends, req: cmd) -> ()
  let target = hash(req.key) mod len(backends)
  req => backends[target]
"#;
        let typed = compile_to_ast(src).unwrap();
        let projection = derive(&typed, "cmd");
        assert!(projection.requires("opcode"));
        assert!(projection.requires("key"));
        assert!(!projection.requires("value"));
        assert!(!projection.requires("cas"));
    }

    #[test]
    fn unknown_record_still_collects_accesses() {
        let src = r#"
type kv: record
  key : string
  value : string

proc P: (kv/kv client)
  client => client
"#;
        let typed = compile_to_ast(src).unwrap();
        let projection = derive(&typed, "nonexistent");
        // The program's own field names are still present via the kv decl uses.
        assert!(!projection.requires("cas"));
    }
}
