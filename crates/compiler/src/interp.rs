//! The IR interpreter executed inside compute tasks.
//!
//! The interpreter evaluates [`IrExpr`]/[`IrStmt`] over a pre-sized frame of
//! [`RtVal`] slots. Channel references are plain output indices into the
//! compute task's output channels; sends are delivered through the
//! [`EmitSink`] callback so the interpreter itself has no dependency on the
//! task machinery.

use crate::error::{locate, locate_frame};
use crate::ir::{Builtin, FunctionIr, IrCall, IrExpr, IrSink, IrStmt, ProgramIr};
use flick_grammar::{Message, MsgValue};
use flick_lang::ast::{BinOp, UnOp};
use flick_runtime::{RuntimeError, SharedDict, Value};

/// A value manipulated by the interpreter: either an ordinary runtime value
/// or one of the reference kinds (channels, channel arrays, dictionaries).
#[derive(Debug, Clone)]
pub enum RtVal {
    /// An ordinary value.
    Val(Value),
    /// A single output channel, by output index.
    Channel(usize),
    /// An array of output channels.
    ChannelArray(Vec<usize>),
    /// A (shared) dictionary.
    Dict(SharedDict),
}

impl RtVal {
    /// Extracts the plain value, if this is one.
    pub fn into_value(self) -> Result<Value, RuntimeError> {
        match self {
            RtVal::Val(v) => Ok(v),
            other => Err(RuntimeError::Logic(format!(
                "expected a value, found {other:?}"
            ))),
        }
    }

    pub(crate) fn as_value(&self) -> Result<&Value, RuntimeError> {
        match self {
            RtVal::Val(v) => Ok(v),
            other => Err(RuntimeError::Logic(format!(
                "expected a value, found {other:?}"
            ))),
        }
    }
}

/// Receives values sent to output channels during interpretation.
pub trait EmitSink {
    /// Sends `value` to output channel `channel`.
    fn send(&mut self, channel: usize, value: Value);
}

/// An [`EmitSink`] that records sends into a vector (used by tests and by
/// the foldt logic which forwards them later).
#[derive(Debug, Default)]
pub struct CollectSink {
    /// The recorded `(channel, value)` pairs.
    pub sent: Vec<(usize, Value)>,
}

impl EmitSink for CollectSink {
    fn send(&mut self, channel: usize, value: Value) {
        self.sent.push((channel, value));
    }
}

/// The IR interpreter.
pub struct Interpreter<'a> {
    program: &'a ProgramIr,
}

impl<'a> Interpreter<'a> {
    /// Creates an interpreter over a lowered program.
    pub fn new(program: &'a ProgramIr) -> Self {
        Interpreter { program }
    }

    /// Calls function `index` with the given arguments.
    pub fn call_function(
        &self,
        index: usize,
        args: Vec<RtVal>,
        sink: &mut dyn EmitSink,
    ) -> Result<RtVal, RuntimeError> {
        let function: &FunctionIr = self
            .program
            .functions
            .get(index)
            .ok_or_else(|| RuntimeError::Logic(format!("unknown function index {index}")))?;
        if args.len() != function.params {
            return Err(RuntimeError::Logic(format!(
                "function `{}` expects {} arguments, got {}",
                function.name,
                function.params,
                args.len()
            )));
        }
        let mut frame = vec![RtVal::Val(Value::Unit); function.frame_size.max(args.len())];
        for (i, arg) in args.into_iter().enumerate() {
            frame[i] = arg;
        }
        let result = self
            .exec_block(&function.body, &mut frame, sink)
            .map_err(|e| locate_frame(e, &function.name))?;
        Ok(result.unwrap_or(RtVal::Val(Value::Unit)))
    }

    /// Executes a statement block, returning the value of its final
    /// expression statement (if any). Errors are annotated with the index
    /// of the failing statement (the innermost block wins), so interpreter
    /// diagnostics name the IR node like the VM's name its pc.
    pub fn exec_block(
        &self,
        stmts: &[IrStmt],
        frame: &mut Vec<RtVal>,
        sink: &mut dyn EmitSink,
    ) -> Result<Option<RtVal>, RuntimeError> {
        let mut last = None;
        for (i, stmt) in stmts.iter().enumerate() {
            last = self
                .exec_stmt(stmt, frame, sink)
                .map_err(|e| locate(e, || format!("stmt {i}")))?;
        }
        Ok(last)
    }

    fn exec_stmt(
        &self,
        stmt: &IrStmt,
        frame: &mut Vec<RtVal>,
        sink: &mut dyn EmitSink,
    ) -> Result<Option<RtVal>, RuntimeError> {
        match stmt {
            IrStmt::Store(slot, expr) => {
                let value = self.eval(expr, frame, sink)?;
                if *slot >= frame.len() {
                    frame.resize(slot + 1, RtVal::Val(Value::Unit));
                }
                frame[*slot] = value;
                Ok(None)
            }
            IrStmt::AssignIndex {
                target,
                index,
                value,
            } => {
                let target = self.eval(target, frame, sink)?;
                let key = self.eval(index, frame, sink)?;
                let value = self.eval(value, frame, sink)?.into_value()?;
                match target {
                    RtVal::Dict(dict) => {
                        dict.set(dict_key(key.as_value()?), value);
                        Ok(None)
                    }
                    other => Err(RuntimeError::Logic(format!(
                        "cannot index-assign into {other:?}"
                    ))),
                }
            }
            IrStmt::Pipeline {
                source,
                stages,
                sink: dest,
            } => {
                let mut value = self.eval(source, frame, sink)?;
                for stage in stages {
                    value = self.run_call(stage, Some(value), frame, sink)?;
                }
                match dest {
                    IrSink::Channel(chan) => {
                        let chan = self.eval(chan, frame, sink)?;
                        let value = value.into_value()?;
                        match chan {
                            RtVal::Channel(idx) => sink.send(idx, value),
                            RtVal::ChannelArray(ref idxs) if idxs.len() == 1 => {
                                sink.send(idxs[0], value)
                            }
                            other => {
                                return Err(RuntimeError::Logic(format!(
                                    "pipeline destination is not a channel: {other:?}"
                                )))
                            }
                        }
                        Ok(None)
                    }
                    IrSink::Call(call) => {
                        self.run_call(call, Some(value), frame, sink)?;
                        Ok(None)
                    }
                    IrSink::Discard => Ok(None),
                }
            }
            IrStmt::If { cond, then, els } => {
                let cond = self.eval(cond, frame, sink)?.into_value()?;
                if cond.truthy() {
                    self.exec_block(then, frame, sink)
                } else {
                    self.exec_block(els, frame, sink)
                }
            }
            IrStmt::For { slot, iter, body } => {
                let list = self.eval(iter, frame, sink)?;
                let items = match list {
                    RtVal::Val(Value::List(items)) => items,
                    other => {
                        return Err(RuntimeError::Logic(format!(
                            "`for` expects a list, found {other:?}"
                        )))
                    }
                };
                for item in items {
                    if *slot >= frame.len() {
                        frame.resize(slot + 1, RtVal::Val(Value::Unit));
                    }
                    frame[*slot] = RtVal::Val(item);
                    self.exec_block(body, frame, sink)?;
                }
                Ok(None)
            }
            IrStmt::Expr(expr) => Ok(Some(self.eval(expr, frame, sink)?)),
        }
    }

    fn run_call(
        &self,
        call: &IrCall,
        piped: Option<RtVal>,
        frame: &mut Vec<RtVal>,
        sink: &mut dyn EmitSink,
    ) -> Result<RtVal, RuntimeError> {
        let mut args = Vec::with_capacity(call.args.len() + 1);
        for arg in &call.args {
            args.push(self.eval(arg, frame, sink)?);
        }
        if let Some(piped) = piped {
            args.push(piped);
        }
        self.call_function(call.function, args, sink)
    }

    /// Evaluates an expression.
    pub fn eval(
        &self,
        expr: &IrExpr,
        frame: &mut Vec<RtVal>,
        sink: &mut dyn EmitSink,
    ) -> Result<RtVal, RuntimeError> {
        Ok(match expr {
            IrExpr::Int(v) => RtVal::Val(Value::Int(*v)),
            IrExpr::Str(s) => RtVal::Val(Value::Str(s.clone())),
            IrExpr::Bool(b) => RtVal::Val(Value::Bool(*b)),
            IrExpr::None => RtVal::Val(Value::None),
            IrExpr::Load(slot) => frame
                .get(*slot)
                .cloned()
                .ok_or_else(|| RuntimeError::Logic(format!("frame slot {slot} out of range")))?,
            IrExpr::Field(base, field) => {
                let base = self.eval(base, frame, sink)?;
                match base {
                    RtVal::Val(Value::Msg(msg)) => RtVal::Val(field_value(&msg, field)),
                    other => {
                        return Err(RuntimeError::Logic(format!(
                            "cannot read field `{field}` of {other:?}"
                        )))
                    }
                }
            }
            IrExpr::Index(base, index) => {
                let base = self.eval(base, frame, sink)?;
                let index = self.eval(index, frame, sink)?;
                match base {
                    RtVal::ChannelArray(indices) => {
                        let i = index.as_value()?.as_int().ok_or_else(|| {
                            RuntimeError::Logic("channel-array index must be an integer".into())
                        })? as usize;
                        let idx = indices.get(i).copied().ok_or_else(|| {
                            RuntimeError::Logic(format!("channel index {i} out of range"))
                        })?;
                        RtVal::Channel(idx)
                    }
                    RtVal::Dict(dict) => RtVal::Val(dict.get(&dict_key(index.as_value()?))),
                    RtVal::Val(Value::List(items)) => {
                        let i = index.as_value()?.as_int().unwrap_or(0) as usize;
                        RtVal::Val(items.get(i).cloned().unwrap_or(Value::None))
                    }
                    other => {
                        return Err(RuntimeError::Logic(format!("cannot index into {other:?}")))
                    }
                }
            }
            IrExpr::Binary(op, lhs, rhs) => {
                let l = self.eval(lhs, frame, sink)?;
                let r = self.eval(rhs, frame, sink)?;
                RtVal::Val(binary(*op, l.as_value()?, r.as_value()?)?)
            }
            IrExpr::Unary(op, operand) => {
                let v = self.eval(operand, frame, sink)?;
                let v = v.as_value()?;
                RtVal::Val(match op {
                    UnOp::Neg => Value::Int(-v.as_int().unwrap_or(0)),
                    UnOp::Not => Value::Bool(!v.truthy()),
                })
            }
            IrExpr::Call(call) => self.run_call(call, None, frame, sink)?,
            IrExpr::Builtin(builtin, args) => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(a, frame, sink)?);
                }
                eval_builtin(*builtin, values)?
            }
            IrExpr::MakeRecord(unit, fields, values) => {
                let mut msg = Message::with_capacity(unit.clone(), fields.len());
                for (name, value_expr) in fields.iter().zip(values.iter()) {
                    let value = self.eval(value_expr, frame, sink)?.into_value()?;
                    msg.set(name.clone(), to_msg_value(value));
                }
                RtVal::Val(Value::Msg(msg))
            }
            IrExpr::Fold {
                function,
                init,
                list,
            } => {
                let mut acc = self.eval(init, frame, sink)?;
                for item in self.eval_list(list, frame, sink)? {
                    acc = self.call_function(*function, vec![acc, RtVal::Val(item)], sink)?;
                }
                acc
            }
            IrExpr::Map { function, list } => {
                let mut out = Vec::new();
                for item in self.eval_list(list, frame, sink)? {
                    out.push(
                        self.call_function(*function, vec![RtVal::Val(item)], sink)?
                            .into_value()?,
                    );
                }
                RtVal::Val(Value::List(out))
            }
            IrExpr::Filter { function, list } => {
                let mut out = Vec::new();
                for item in self.eval_list(list, frame, sink)? {
                    let keep = self
                        .call_function(*function, vec![RtVal::Val(item.clone())], sink)?
                        .into_value()?
                        .truthy();
                    if keep {
                        out.push(item);
                    }
                }
                RtVal::Val(Value::List(out))
            }
        })
    }

    fn eval_list(
        &self,
        list: &IrExpr,
        frame: &mut Vec<RtVal>,
        sink: &mut dyn EmitSink,
    ) -> Result<Vec<Value>, RuntimeError> {
        list_items(self.eval(list, frame, sink)?)
    }
}

/// Coerces a value into the item list that `fold`/`map`/`filter` iterate
/// (strings explode into single-character strings). Shared by the
/// interpreter and the bytecode VM.
pub(crate) fn list_items(value: RtVal) -> Result<Vec<Value>, RuntimeError> {
    match value {
        RtVal::Val(Value::List(items)) => Ok(items),
        RtVal::Val(Value::Str(s)) => Ok(s.chars().map(|c| Value::Str(c.to_string())).collect()),
        other => Err(RuntimeError::Logic(format!(
            "expected a list, found {other:?}"
        ))),
    }
}

/// Evaluates a builtin over already-evaluated arguments. Shared by the
/// interpreter and the bytecode VM.
pub(crate) fn eval_builtin(builtin: Builtin, args: Vec<RtVal>) -> Result<RtVal, RuntimeError> {
    Ok(match builtin {
        Builtin::Hash => {
            let v = args
                .first()
                .ok_or_else(|| RuntimeError::Logic("`hash` needs an argument".into()))?;
            RtVal::Val(Value::Int(hash_value(v.as_value()?)))
        }
        Builtin::Len => {
            let v = args
                .first()
                .ok_or_else(|| RuntimeError::Logic("`len` needs an argument".into()))?;
            let len = match v {
                RtVal::ChannelArray(indices) => indices.len() as i64,
                RtVal::Dict(dict) => dict.len() as i64,
                RtVal::Val(Value::List(items)) => items.len() as i64,
                RtVal::Val(Value::Str(s)) => s.len() as i64,
                RtVal::Val(Value::Bytes(b)) => b.len() as i64,
                other => {
                    return Err(RuntimeError::Logic(format!(
                        "`len` of unsupported value {other:?}"
                    )))
                }
            };
            RtVal::Val(Value::Int(len))
        }
        Builtin::EmptyDict => RtVal::Dict(SharedDict::new()),
        Builtin::AllReady => RtVal::Val(Value::Bool(true)),
        Builtin::Str => {
            let v = args
                .first()
                .ok_or_else(|| RuntimeError::Logic("`str` needs an argument".into()))?;
            RtVal::Val(Value::Str(match v.as_value()? {
                Value::Str(s) => s.clone(),
                Value::Int(i) => i.to_string(),
                Value::Bool(b) => b.to_string(),
                other => other.to_string(),
            }))
        }
        Builtin::Int => {
            let v = args
                .first()
                .ok_or_else(|| RuntimeError::Logic("`int` needs an argument".into()))?;
            let value = match v.as_value()? {
                Value::Int(i) => *i,
                Value::Str(s) => s.trim().parse().unwrap_or(0),
                Value::Bool(b) => *b as i64,
                _ => 0,
            };
            RtVal::Val(Value::Int(value))
        }
    })
}

/// Converts a runtime value used as a dictionary key to its canonical string
/// form.
pub fn dict_key(value: &Value) -> String {
    match value {
        Value::Str(s) => s.clone(),
        Value::Bytes(b) => String::from_utf8_lossy(b).into_owned(),
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        other => other.to_string(),
    }
}

/// Reads a message field as a runtime value.
pub fn field_value(msg: &Message, field: &str) -> Value {
    match msg.get(field) {
        Some(MsgValue::UInt(v)) => Value::Int(*v as i64),
        Some(MsgValue::Int(v)) => Value::Int(*v),
        Some(MsgValue::Bool(b)) => Value::Bool(*b),
        Some(MsgValue::Str(s)) => Value::Str(s.clone()),
        Some(MsgValue::Bytes(b)) => Value::Bytes(b.clone()),
        None => Value::None,
    }
}

/// Converts a runtime value into a message field value.
pub fn to_msg_value(value: Value) -> MsgValue {
    match value {
        Value::Int(v) => {
            if v >= 0 {
                MsgValue::UInt(v as u64)
            } else {
                MsgValue::Int(v)
            }
        }
        Value::Bool(b) => MsgValue::Bool(b),
        Value::Str(s) => MsgValue::Str(s),
        Value::Bytes(b) => MsgValue::Bytes(b),
        Value::Msg(m) => MsgValue::Str(m.to_string()),
        other => MsgValue::Str(other.to_string()),
    }
}

/// A stable FNV-1a hash used by the `hash` builtin, truncated to a
/// non-negative `i64` so that `hash(x) mod len(backends)` is well defined.
pub fn hash_value(value: &Value) -> i64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    let mut feed = |bytes: &[u8]| {
        for b in bytes {
            hash ^= *b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
    };
    match value {
        Value::Str(s) => feed(s.as_bytes()),
        Value::Bytes(b) => feed(b),
        Value::Int(i) => feed(&i.to_le_bytes()),
        Value::Bool(b) => feed(&[*b as u8]),
        Value::Msg(m) => feed(m.to_string().as_bytes()),
        other => feed(other.to_string().as_bytes()),
    }
    (hash >> 1) as i64
}

/// Applies a binary operator with FLICK's coercion rules (`+` concatenates
/// strings, arithmetic coerces through [`int_of`]). Shared verbatim by the
/// interpreter and the bytecode VM so the two execution modes cannot drift.
pub(crate) fn binary(op: BinOp, l: &Value, r: &Value) -> Result<Value, RuntimeError> {
    use BinOp::*;
    Ok(match op {
        Add => match (l, r) {
            (Value::Str(a), Value::Str(b)) => Value::Str(format!("{a}{b}")),
            _ => Value::Int(int_of(l) + int_of(r)),
        },
        Sub => Value::Int(int_of(l) - int_of(r)),
        Mul => Value::Int(int_of(l) * int_of(r)),
        Div => {
            let divisor = int_of(r);
            if divisor == 0 {
                return Err(RuntimeError::Logic("division by zero".into()));
            }
            Value::Int(int_of(l) / divisor)
        }
        Mod => {
            let divisor = int_of(r);
            if divisor == 0 {
                return Err(RuntimeError::Logic("modulo by zero".into()));
            }
            Value::Int(int_of(l).rem_euclid(divisor))
        }
        Eq => Value::Bool(values_equal(l, r)),
        Neq => Value::Bool(!values_equal(l, r)),
        Lt => Value::Bool(compare(l, r).is_lt()),
        Gt => Value::Bool(compare(l, r).is_gt()),
        Le => Value::Bool(compare(l, r).is_le()),
        Ge => Value::Bool(compare(l, r).is_ge()),
        And => Value::Bool(l.truthy() && r.truthy()),
        Or => Value::Bool(l.truthy() || r.truthy()),
    })
}

pub(crate) fn int_of(v: &Value) -> i64 {
    match v {
        Value::Int(i) => *i,
        Value::Bool(b) => *b as i64,
        Value::Str(s) => s.parse().unwrap_or(0),
        _ => 0,
    }
}

pub(crate) fn values_equal(l: &Value, r: &Value) -> bool {
    match (l, r) {
        (Value::None, Value::None) => true,
        (Value::None, _) | (_, Value::None) => false,
        (Value::Str(a), Value::Bytes(b)) => a.as_bytes() == &b[..],
        (Value::Bytes(a), Value::Str(b)) => &a[..] == b.as_bytes(),
        (a, b) => a == b,
    }
}

pub(crate) fn compare(l: &Value, r: &Value) -> std::cmp::Ordering {
    match (l, r) {
        (Value::Str(a), Value::Str(b)) => a.cmp(b),
        _ => int_of(l).cmp(&int_of(r)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower;
    use flick_lang::compile_to_ast;

    fn program(src: &str, proc_name: &str) -> ProgramIr {
        lower(&compile_to_ast(src).unwrap(), proc_name).unwrap()
    }

    const ROUTER: &str = r#"
type cmd: record
  key : string

proc P: (cmd/cmd client, [cmd/cmd] backends)
  client => target_backend(backends)

fun target_backend: ([-/cmd] backends, req: cmd) -> ()
  let target = hash(req.key) mod len(backends)
  req => backends[target]
"#;

    fn cmd_msg(key: &str) -> Message {
        let mut m = Message::new("cmd");
        m.set("key", MsgValue::Str(key.into()));
        m
    }

    #[test]
    fn routing_function_picks_a_backend_deterministically() {
        let ir = program(ROUTER, "P");
        let interp = Interpreter::new(&ir);
        let mut sink = CollectSink::default();
        // backends as output channels 1..=4.
        let backends = RtVal::ChannelArray(vec![1, 2, 3, 4]);
        let req = RtVal::Val(Value::Msg(cmd_msg("user:42")));
        interp
            .call_function(0, vec![backends.clone(), req.clone()], &mut sink)
            .unwrap();
        assert_eq!(sink.sent.len(), 1);
        let (chan_a, _) = sink.sent[0];
        assert!((1..=4).contains(&chan_a));
        // Deterministic: the same key always picks the same backend.
        let mut sink2 = CollectSink::default();
        let interp2 = Interpreter::new(&ir);
        interp2
            .call_function(0, vec![backends, req], &mut sink2)
            .unwrap();
        assert_eq!(sink2.sent[0].0, chan_a);
    }

    #[test]
    fn different_keys_spread_over_backends() {
        let ir = program(ROUTER, "P");
        let interp = Interpreter::new(&ir);
        let mut chosen = std::collections::HashSet::new();
        for i in 0..64 {
            let mut sink = CollectSink::default();
            interp
                .call_function(
                    0,
                    vec![
                        RtVal::ChannelArray(vec![1, 2, 3, 4]),
                        RtVal::Val(Value::Msg(cmd_msg(&format!("key-{i}")))),
                    ],
                    &mut sink,
                )
                .unwrap();
            chosen.insert(sink.sent[0].0);
        }
        assert!(
            chosen.len() >= 3,
            "hash routing should use most backends, got {chosen:?}"
        );
    }

    #[test]
    fn cache_router_functions_update_and_hit_the_cache() {
        let src = r#"
type cmd: record
  opcode : integer {signed=false, size=1}
  keylen : integer {signed=false, size=2}
  key : string {size=keylen}

proc memcached: (cmd/cmd client, [cmd/cmd] backends)
  global cache := empty_dict
  backends => update_cache(cache) => client
  client => test_cache(client, backends, cache)

fun update_cache: (cache: ref dict<string*cmd>, resp: cmd) -> (cmd)
  if resp.opcode = 12:
    cache[resp.key] := resp
  resp

fun test_cache: (-/cmd client, [-/cmd] backends, cache: ref dict<string*cmd>, req: cmd) -> ()
  if cache[req.key] = None or req.opcode <> 12:
    let target = hash(req.key) mod len(backends)
    req => backends[target]
  else:
    cache[req.key] => client
"#;
        let ir = program(src, "memcached");
        let interp = Interpreter::new(&ir);
        let cache = SharedDict::new();
        let update_idx = ir
            .functions
            .iter()
            .position(|f| f.name == "update_cache")
            .unwrap();
        let test_idx = ir
            .functions
            .iter()
            .position(|f| f.name == "test_cache")
            .unwrap();

        let mut getk = cmd_msg("user:1");
        getk.set("opcode", MsgValue::UInt(12));

        // A miss goes to a backend (channels 1..=2), not to the client (0).
        let mut sink = CollectSink::default();
        interp
            .call_function(
                test_idx,
                vec![
                    RtVal::Channel(0),
                    RtVal::ChannelArray(vec![1, 2]),
                    RtVal::Dict(cache.clone()),
                    RtVal::Val(Value::Msg(getk.clone())),
                ],
                &mut sink,
            )
            .unwrap();
        assert_eq!(sink.sent.len(), 1);
        assert_ne!(sink.sent[0].0, 0);

        // A GETK response populates the cache and is returned.
        let mut sink = CollectSink::default();
        let result = interp
            .call_function(
                update_idx,
                vec![
                    RtVal::Dict(cache.clone()),
                    RtVal::Val(Value::Msg(getk.clone())),
                ],
                &mut sink,
            )
            .unwrap();
        assert!(matches!(result, RtVal::Val(Value::Msg(_))));
        assert!(cache.contains("user:1"));

        // The same request now hits the cache and is answered to the client.
        let mut sink = CollectSink::default();
        interp
            .call_function(
                test_idx,
                vec![
                    RtVal::Channel(0),
                    RtVal::ChannelArray(vec![1, 2]),
                    RtVal::Dict(cache),
                    RtVal::Val(Value::Msg(getk)),
                ],
                &mut sink,
            )
            .unwrap();
        assert_eq!(sink.sent.len(), 1);
        assert_eq!(
            sink.sent[0].0, 0,
            "cache hit must be sent back to the client"
        );
    }

    #[test]
    fn fold_map_filter_evaluate() {
        let src = r#"
fun add: (acc: integer, x: integer) -> (integer)
  acc + x

fun double: (x: integer) -> (integer)
  x * 2

fun is_big: (x: integer) -> (bool)
  x > 4

fun calc: (xs: [integer]) -> (integer)
  fold(add, 0, filter(is_big, map(double, xs)))

type t: record
  key : string

proc P: (t/t c)
  c => c
"#;
        let ir = program(src, "P");
        let interp = Interpreter::new(&ir);
        let calc = ir.functions.iter().position(|f| f.name == "calc").unwrap();
        let xs = RtVal::Val(Value::List(vec![
            Value::Int(1),
            Value::Int(2),
            Value::Int(3),
        ]));
        let mut sink = CollectSink::default();
        // doubles: [2,4,6]; filtered (>4): [6]; sum = 6.
        let result = interp.call_function(calc, vec![xs], &mut sink).unwrap();
        assert_eq!(result.into_value().unwrap(), Value::Int(6));
    }

    #[test]
    fn division_and_modulo_by_zero_are_errors() {
        assert!(binary(BinOp::Div, &Value::Int(1), &Value::Int(0)).is_err());
        assert!(binary(BinOp::Mod, &Value::Int(1), &Value::Int(0)).is_err());
        assert_eq!(
            binary(BinOp::Mod, &Value::Int(-3), &Value::Int(4)).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn string_comparisons_and_concatenation() {
        assert_eq!(
            binary(
                BinOp::Add,
                &Value::Str("ab".into()),
                &Value::Str("cd".into())
            )
            .unwrap(),
            Value::Str("abcd".into())
        );
        assert_eq!(
            binary(BinOp::Lt, &Value::Str("a".into()), &Value::Str("b".into())).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            binary(BinOp::Eq, &Value::None, &Value::Str("x".into())).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            binary(BinOp::Eq, &Value::None, &Value::None).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn hash_is_stable_and_non_negative() {
        let a = hash_value(&Value::Str("user:1".into()));
        let b = hash_value(&Value::Str("user:1".into()));
        let c = hash_value(&Value::Str("user:2".into()));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a >= 0);
    }
}
