//! Synthesising wire grammars from FLICK `type` declarations.
//!
//! Listing 1 of the paper declares the Memcached command layout directly in
//! the FLICK program using `{size=...}` / `{signed=...}` annotations; the
//! compiler generates parsing and serialisation code from those annotations.
//! This module performs that synthesis: a record whose fields all carry
//! serialisation annotations (or have implicit sizes) becomes a
//! [`UnitGrammar`] and hence a [`GrammarCodec`].
//!
//! Types without annotations (such as Listing 1's two-line `cmd` or Listing
//! 3's `kv`) do not describe a full wire format; for those the compiler
//! falls back to a registered protocol codec (see
//! [`crate::factory::CompileOptions::codecs`]).

use crate::error::CompileError;
use flick_grammar::model::{FieldKind, GrammarItem, LenExpr, UnitGrammar};
use flick_grammar::GrammarCodec;
use flick_lang::ast::{BinOp, Expr, ExprKind};
use flick_lang::typecheck::RecordInfo;
use flick_lang::types::Type;

/// Returns `true` if the record carries enough serialisation annotations to
/// synthesise a grammar (every string/bytes field has a size, every integer
/// field has an explicit or default width).
pub fn can_synthesise(record: &RecordInfo) -> bool {
    record.fields.iter().all(|f| match f.ty {
        Type::Int | Type::Bool => true,
        Type::Str => f.size.is_some(),
        _ => false,
    }) && !record.fields.is_empty()
}

/// Synthesises a grammar codec from an annotated record declaration.
pub fn synthesise(record: &RecordInfo) -> Result<GrammarCodec, CompileError> {
    let mut grammar = UnitGrammar::new(record.name.clone());
    let mut anon = 0usize;
    for field in &record.fields {
        let name = field.name.clone().unwrap_or_else(|| {
            anon += 1;
            String::new()
        });
        let item = match &field.ty {
            Type::Int | Type::Bool => {
                let width = match &field.size {
                    Some(expr) => const_size(expr).ok_or_else(|| {
                        CompileError::Unsupported(format!(
                            "integer field `{name}` of `{}` must have a constant size",
                            record.name
                        ))
                    })?,
                    None => 8,
                };
                let width = width as u8;
                if field.signed {
                    GrammarItem::Field {
                        name,
                        kind: FieldKind::Int { width },
                    }
                } else {
                    GrammarItem::Field {
                        name,
                        kind: FieldKind::UInt { width },
                    }
                }
            }
            Type::Str => {
                let size = field.size.as_ref().ok_or_else(|| {
                    CompileError::Unsupported(format!(
                        "string field `{name}` of `{}` needs a size annotation",
                        record.name
                    ))
                })?;
                let length = lower_len_expr(size, record)?;
                GrammarItem::Field {
                    name,
                    kind: FieldKind::Str { length },
                }
            }
            other => {
                return Err(CompileError::Unsupported(format!(
                    "field type {other} cannot be serialised"
                )))
            }
        };
        grammar = grammar.item(item);
    }
    // Serialisation rules: any integer field that is used as (part of) the
    // size of a later string field is recomputed from that field's length.
    let mut rules: Vec<(String, LenExpr)> = Vec::new();
    for field in &record.fields {
        if let (Some(field_name), Some(size)) = (&field.name, &field.size) {
            if matches!(field.ty, Type::Str) {
                if let ExprKind::Ident(len_field) = &size.kind {
                    rules.push((len_field.clone(), LenExpr::LenOf(field_name.clone())));
                }
            }
        }
    }
    for (target, expr) in rules {
        grammar = grammar.ser_rule(target, expr);
    }
    GrammarCodec::new(grammar).map_err(|e| CompileError::Unsupported(e.to_string()))
}

fn const_size(expr: &Expr) -> Option<u64> {
    match &expr.kind {
        ExprKind::Int(v) if *v > 0 => Some(*v as u64),
        _ => None,
    }
}

fn lower_len_expr(expr: &Expr, record: &RecordInfo) -> Result<LenExpr, CompileError> {
    match &expr.kind {
        ExprKind::Int(v) if *v >= 0 => Ok(LenExpr::Const(*v as u64)),
        ExprKind::Ident(name) => {
            if record.field(name).is_some() {
                Ok(LenExpr::Field(name.clone()))
            } else {
                Err(CompileError::Unsupported(format!(
                    "size expression references unknown field `{name}`"
                )))
            }
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let l = lower_len_expr(lhs, record)?;
            let r = lower_len_expr(rhs, record)?;
            match op {
                BinOp::Add => Ok(LenExpr::add(l, r)),
                BinOp::Sub => Ok(LenExpr::sub(l, r)),
                BinOp::Mul => Ok(LenExpr::Mul(Box::new(l), Box::new(r))),
                other => Err(CompileError::Unsupported(format!(
                    "operator {other:?} is not allowed in size expressions"
                ))),
            }
        }
        _ => Err(CompileError::Unsupported(
            "unsupported size expression".to_string(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_grammar::{Message, MsgValue, ParseOutcome, WireCodec};
    use flick_lang::compile_to_ast;

    fn record_of(src: &str, name: &str) -> RecordInfo {
        compile_to_ast(src).unwrap().record(name).unwrap().clone()
    }

    const ANNOTATED: &str = r#"
type cmd: record
  opcode : integer {signed=false, size=1}
  keylen : integer {signed=false, size=2}
  key : string {size=keylen}

fun touch: (c: cmd) -> (string)
  c.key
"#;

    #[test]
    fn synthesises_length_prefixed_grammar() {
        let record = record_of(ANNOTATED, "cmd");
        assert!(can_synthesise(&record));
        let codec = synthesise(&record).unwrap();
        let mut msg = Message::new("cmd");
        msg.set("opcode", MsgValue::UInt(12));
        msg.set("key", MsgValue::Str("user:1".into()));
        let mut wire = Vec::new();
        codec.serialize(&msg, &mut wire).unwrap();
        assert_eq!(wire.len(), 1 + 2 + 6);
        assert_eq!(wire[0], 12);
        assert_eq!(&wire[1..3], &[0, 6]);
        match codec.parse(&wire, None).unwrap() {
            ParseOutcome::Complete { message, consumed } => {
                assert_eq!(consumed, wire.len());
                assert_eq!(message.str_field("key"), Some("user:1"));
                assert_eq!(message.uint_field("keylen"), Some(6));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unannotated_string_cannot_be_synthesised() {
        let src = "type kv: record\n  key : string\n  value : string\n\nfun f: (x: kv) -> (string)\n  x.key\n";
        let record = record_of(src, "kv");
        assert!(!can_synthesise(&record));
        assert!(synthesise(&record).is_err());
    }

    #[test]
    fn anonymous_padding_fields_are_preserved() {
        let src = r#"
type cmd: record
  opcode : integer {signed=false, size=1}
  _ : string {size=3}
  keylen : integer {signed=false, size=2}
  key : string {size=keylen}

fun f: (c: cmd) -> (string)
  c.key
"#;
        let record = record_of(src, "cmd");
        let codec = synthesise(&record).unwrap();
        let mut msg = Message::new("cmd");
        msg.set("opcode", MsgValue::UInt(1));
        msg.set("key", MsgValue::Str("ab".into()));
        let mut wire = Vec::new();
        codec.serialize(&msg, &mut wire).unwrap();
        // 1 opcode + 3 padding + 2 keylen + 2 key.
        assert_eq!(wire.len(), 8);
    }

    #[test]
    fn size_arithmetic_is_supported() {
        let src = r#"
type rec: record
  total : integer {signed=false, size=2}
  keylen : integer {signed=false, size=2}
  key : string {size=keylen}
  body : string {size=total-keylen}

fun f: (r: rec) -> (string)
  r.body
"#;
        let record = record_of(src, "rec");
        let codec = synthesise(&record).unwrap();
        // total=7, keylen=3 -> body is 4 bytes.
        let wire = [0u8, 7, 0, 3, b'a', b'b', b'c', b'w', b'x', b'y', b'z'];
        match codec.parse(&wire, None).unwrap() {
            ParseOutcome::Complete { message, .. } => {
                assert_eq!(message.str_field("key"), Some("abc"));
                assert_eq!(message.str_field("body"), Some("wxyz"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
