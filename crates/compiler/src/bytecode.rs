//! Lowering the FLICK IR to compact bytecode.
//!
//! The tree-walking interpreter ([`crate::interp`]) re-discovers the shape
//! of every expression on every message: each node is a heap-boxed enum
//! walked recursively, every field projection is a name lookup, every
//! operand re-dispatched. This module lowers [`ProgramIr`] once, at
//! compile time, into flat [`Chunk`]s of pre-decoded [`Op`]s that the VM
//! ([`crate::vm`]) executes with a single `loop { match op }` dispatch
//! loop — no recursion on the expression tree and no per-message decode
//! work.
//!
//! Layout decisions:
//!
//! * **Constants pool** — literals are interned (deduplicated) into
//!   [`CompiledProgram::consts`]; `Op::Const` carries the pool index.
//! * **Stack ops over frame slots** — expressions evaluate on an operand
//!   stack shared across nested calls; locals live in the same frame
//!   slots the IR lowering assigned, so `Load`/`Store` indices match the
//!   interpreter's frames exactly.
//! * **Field sites** — every `msg.field` projection gets a *site* id into
//!   a per-logic offset cache. The compiler seeds the site with the
//!   grammar-declared field offset when the record layouts make it
//!   unambiguous; the VM verifies the cached name on each hit and falls
//!   back to (and re-caches from) a linear lookup, so projections and
//!   codec-specific field orders stay correct while steady-state reads
//!   are index ops instead of name scans.
//! * **Jumps are absolute, pre-patched instruction indices** — no offset
//!   decoding in the dispatch loop; deep nesting and long loop bodies are
//!   exercised by the jump-width tests below.
//!
//! Routing rules and the `foldt` combine body are compiled to chunks of
//! their own so the per-message path in [`crate::vm::VmLogic`] never
//! touches the IR.

use crate::ir::{Builtin, IrCall, IrExpr, IrSink, IrStmt, ProcessIr, ProgramIr};
use flick_lang::ast::{BinOp, UnOp};
use flick_runtime::Value;
use std::collections::HashMap;

/// An unseeded (or invalidated) field-site cache entry.
pub const NO_OFFSET: u32 = u32::MAX;

/// One pre-decoded VM instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Push `consts[idx]`.
    Const(u32),
    /// Push `Unit`.
    Unit,
    /// Push `frame[slot]`.
    Load(u32),
    /// Pop into `frame[slot]` (growing the frame like the interpreter).
    Store(u32),
    /// Discard the top of stack.
    Pop,
    /// Pop a message; push its `names[name]` field. `site` indexes the
    /// per-logic field-offset cache.
    Field { name: u32, site: u32 },
    /// Pop index, pop base; push `base[index]`.
    Index,
    /// Pop value, pop key, pop target; `target[key] := value`.
    IndexAssign,
    /// Pop rhs, pop lhs; push the operator result.
    Binary(BinOp),
    /// Pop the operand; push the operator result.
    Unary(UnOp),
    /// Pop `argc` arguments (last on top); call `functions[function]`;
    /// push its result.
    Call { function: u32, argc: u32 },
    /// Pop `argc` arguments; push the builtin's result.
    Builtin { builtin: Builtin, argc: u32 },
    /// Pop `argc` field values (last on top); push a record message built
    /// from `records[record]`.
    Record { record: u32, argc: u32 },
    /// Pop the list, pop the initial accumulator; push the fold result.
    Fold { function: u32 },
    /// Pop the list; push the mapped list.
    Map { function: u32 },
    /// Pop the list; push the filtered list.
    Filter { function: u32 },
    /// Unconditional jump to an absolute instruction index.
    Jump(u32),
    /// Pop a value; jump when it is falsy.
    JumpIfFalse(u32),
    /// If the top of stack is `Unit`: pop it and jump (a unit-returning
    /// pipeline stage consumed the message). Otherwise fall through.
    JumpIfUnit(u32),
    /// Pop the evaluated `for` iteree into `list_slot`, reversed so the
    /// loop head pops items in order.
    ForPrep { list_slot: u32 },
    /// Loop head: move the next item of `frame[list_slot]` into
    /// `var_slot`, or jump to `exit` when the list is drained.
    ForNext {
        list_slot: u32,
        var_slot: u32,
        exit: u32,
    },
    /// Pop channel, pop value; strict in-function pipeline send (single
    /// channel or one-element channel array, anything else is an error).
    Send,
    /// Pop channel, pop value; lenient rule-level send (first element of
    /// a non-empty channel array; silently dropped otherwise).
    SendRule,
    /// Return the top of stack as the chunk result.
    Return,
}

/// A flat, jump-patched instruction sequence plus the frame size it runs
/// with (the IR frame plus any hidden loop/pipeline temporaries).
#[derive(Debug, Clone)]
pub struct Chunk {
    /// The instruction stream.
    pub code: Vec<Op>,
    /// Frame slots this chunk may touch.
    pub frame_size: usize,
}

/// A compiled function, index-aligned with [`ProgramIr::functions`].
#[derive(Debug, Clone)]
pub struct CompiledFunction {
    /// The FLICK-level function name (diagnostics).
    pub name: String,
    /// Declared parameter count (arity-checked at call time, like the
    /// interpreter).
    pub params: usize,
    /// The compiled body.
    pub chunk: Chunk,
}

/// A compiled routing rule, index-aligned with [`ProcessIr::rules`].
#[derive(Debug, Clone)]
pub struct CompiledRule {
    /// The channel parameter whose arrivals trigger this rule
    /// (`usize::MAX` for dropped value-pipelines, as in the IR).
    pub source_param: usize,
    /// Hidden frame slot holding the message as it threads the stages.
    pub msg_slot: usize,
    /// The compiled stage/sink sequence.
    pub chunk: Chunk,
}

/// The compiled `foldt` combine body.
#[derive(Debug, Clone)]
pub struct CompiledFoldt {
    /// Frame slots for the two elements and the key binder.
    pub binder_slots: (usize, usize, usize),
    /// The compiled combine body; its result is the merged element.
    pub chunk: Chunk,
}

/// The process-level facts the VM needs to build frames without the IR.
#[derive(Debug, Clone)]
pub struct CompiledProcess {
    /// Whether each channel parameter is an array (`[cmd/cmd] backends`).
    pub param_is_array: Vec<bool>,
    /// Global dictionary names, in frame order after the parameters.
    pub globals: Vec<String>,
    /// The process frame size (parameters + globals + rule locals).
    pub frame_size: usize,
}

/// The field-name template `Op::Record` instantiates.
#[derive(Debug, Clone)]
pub struct RecordTemplate {
    /// The record/unit name of the constructed message.
    pub unit: String,
    /// Field names in construction order.
    pub fields: Vec<String>,
}

/// A whole program lowered to bytecode.
#[derive(Debug)]
pub struct CompiledProgram {
    /// Interned literal constants.
    pub consts: Vec<Value>,
    /// Interned field names referenced by `Op::Field`.
    pub names: Vec<String>,
    /// Record templates referenced by `Op::Record`.
    pub records: Vec<RecordTemplate>,
    /// Compiled functions (same indices as the IR).
    pub functions: Vec<CompiledFunction>,
    /// Compiled routing rules (same order as the IR process).
    pub rules: Vec<CompiledRule>,
    /// Frame-shape facts about the process the rules belong to.
    pub process: CompiledProcess,
    /// The compiled `foldt` combine body, when the process has one.
    pub foldt: Option<CompiledFoldt>,
    /// Grammar-seeded initial offset per field site (`NO_OFFSET` when the
    /// layouts were ambiguous); logic instances copy this into their
    /// mutable per-site cache.
    pub field_offsets: Vec<u32>,
}

impl CompiledProgram {
    /// Number of field-projection sites (the size of a logic instance's
    /// offset cache).
    pub fn field_sites(&self) -> usize {
        self.field_offsets.len()
    }
}

/// Interning key for the constants pool (`Value` itself is not hashable).
#[derive(Hash, PartialEq, Eq)]
enum ConstKey {
    Int(i64),
    Str(String),
    Bool(bool),
    None,
}

/// Compiles a lowered program to bytecode without grammar layouts (field
/// sites start unseeded and warm up at run time).
pub fn compile(program: &ProgramIr) -> CompiledProgram {
    compile_with_layouts(program, &[])
}

/// Compiles a lowered program to bytecode, seeding field-site offsets
/// from the given record layouts (`(record name, field names in parse
/// order)` as the grammar declares them).
pub fn compile_with_layouts(
    program: &ProgramIr,
    layouts: &[(String, Vec<String>)],
) -> CompiledProgram {
    let mut compiler = Compiler {
        layouts,
        consts: Vec::new(),
        const_keys: HashMap::new(),
        names: Vec::new(),
        name_keys: HashMap::new(),
        records: Vec::new(),
        field_offsets: Vec::new(),
    };
    let functions = program
        .functions
        .iter()
        .map(|function| {
            let mut chunk = ChunkGen::new(function.frame_size);
            compiler.block(&mut chunk, &function.body, true);
            chunk.emit(Op::Return);
            CompiledFunction {
                name: function.name.clone(),
                params: function.params,
                chunk: chunk.finish(),
            }
        })
        .collect();
    let rules = program
        .process
        .rules
        .iter()
        .map(|rule| compiler.rule(&program.process, rule))
        .collect();
    let foldt = program.process.foldt.as_ref().map(|foldt| {
        let mut chunk = ChunkGen::new(foldt.frame_size);
        compiler.block(&mut chunk, &foldt.body, true);
        chunk.emit(Op::Return);
        CompiledFoldt {
            binder_slots: foldt.binder_slots,
            chunk: chunk.finish(),
        }
    });
    CompiledProgram {
        consts: compiler.consts,
        names: compiler.names,
        records: compiler.records,
        functions,
        rules,
        process: CompiledProcess {
            param_is_array: program.process.params.iter().map(|p| p.is_array).collect(),
            globals: program.process.globals.clone(),
            frame_size: program.process.frame_size,
        },
        foldt,
        field_offsets: compiler.field_offsets,
    }
}

/// Per-chunk code generator: instruction buffer plus hidden-slot
/// allocation above the IR frame.
struct ChunkGen {
    code: Vec<Op>,
    frame_size: usize,
}

impl ChunkGen {
    fn new(frame_size: usize) -> Self {
        ChunkGen {
            code: Vec::new(),
            frame_size,
        }
    }

    fn emit(&mut self, op: Op) -> usize {
        self.code.push(op);
        self.code.len() - 1
    }

    /// Next instruction index (used as a jump target).
    fn here(&self) -> usize {
        self.code.len()
    }

    /// Patches the jump at `at` to the current instruction index.
    fn patch_here(&mut self, at: usize) {
        let target = self.here() as u32;
        match &mut self.code[at] {
            Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfUnit(t) => *t = target,
            Op::ForNext { exit, .. } => *exit = target,
            other => unreachable!("patching a non-jump op {other:?}"),
        }
    }

    /// Allocates a hidden frame slot (loop state, pipeline temporaries).
    fn alloc_temp(&mut self) -> usize {
        let slot = self.frame_size;
        self.frame_size += 1;
        slot
    }

    fn finish(self) -> Chunk {
        Chunk {
            code: self.code,
            frame_size: self.frame_size,
        }
    }
}

struct Compiler<'p> {
    layouts: &'p [(String, Vec<String>)],
    consts: Vec<Value>,
    const_keys: HashMap<ConstKey, u32>,
    names: Vec<String>,
    name_keys: HashMap<String, u32>,
    records: Vec<RecordTemplate>,
    field_offsets: Vec<u32>,
}

impl Compiler<'_> {
    fn const_of(&mut self, key: ConstKey, value: impl FnOnce() -> Value) -> u32 {
        if let Some(idx) = self.const_keys.get(&key) {
            return *idx;
        }
        let idx = self.consts.len() as u32;
        self.consts.push(value());
        self.const_keys.insert(key, idx);
        idx
    }

    fn name_of(&mut self, name: &str) -> u32 {
        if let Some(idx) = self.name_keys.get(name) {
            return *idx;
        }
        let idx = self.names.len() as u32;
        self.names.push(name.to_string());
        self.name_keys.insert(name.to_string(), idx);
        idx
    }

    /// Allocates a field site, seeded with the grammar offset when every
    /// known record layout containing `field` agrees on its position.
    fn field_site(&mut self, field: &str) -> u32 {
        let mut seed = None;
        for (_, fields) in self.layouts {
            if let Some(pos) = fields.iter().position(|f| f == field) {
                match seed {
                    None => seed = Some(pos as u32),
                    Some(prev) if prev == pos as u32 => {}
                    Some(_) => {
                        seed = Some(NO_OFFSET);
                        break;
                    }
                }
            }
        }
        let site = self.field_offsets.len() as u32;
        self.field_offsets.push(seed.unwrap_or(NO_OFFSET));
        site
    }

    fn record_of(&mut self, unit: &str, fields: &[String]) -> u32 {
        if let Some(idx) = self
            .records
            .iter()
            .position(|r| r.unit == unit && r.fields == fields)
        {
            return idx as u32;
        }
        self.records.push(RecordTemplate {
            unit: unit.to_string(),
            fields: fields.to_vec(),
        });
        (self.records.len() - 1) as u32
    }

    fn expr(&mut self, chunk: &mut ChunkGen, expr: &IrExpr) {
        match expr {
            IrExpr::Int(v) => {
                let idx = self.const_of(ConstKey::Int(*v), || Value::Int(*v));
                chunk.emit(Op::Const(idx));
            }
            IrExpr::Str(s) => {
                let idx = self.const_of(ConstKey::Str(s.clone()), || Value::Str(s.clone()));
                chunk.emit(Op::Const(idx));
            }
            IrExpr::Bool(b) => {
                let idx = self.const_of(ConstKey::Bool(*b), || Value::Bool(*b));
                chunk.emit(Op::Const(idx));
            }
            IrExpr::None => {
                let idx = self.const_of(ConstKey::None, || Value::None);
                chunk.emit(Op::Const(idx));
            }
            IrExpr::Load(slot) => {
                chunk.emit(Op::Load(*slot as u32));
            }
            IrExpr::Field(base, field) => {
                self.expr(chunk, base);
                let name = self.name_of(field);
                let site = self.field_site(field);
                chunk.emit(Op::Field { name, site });
            }
            IrExpr::Index(base, index) => {
                self.expr(chunk, base);
                self.expr(chunk, index);
                chunk.emit(Op::Index);
            }
            IrExpr::Binary(op, lhs, rhs) => {
                self.expr(chunk, lhs);
                self.expr(chunk, rhs);
                chunk.emit(Op::Binary(*op));
            }
            IrExpr::Unary(op, operand) => {
                self.expr(chunk, operand);
                chunk.emit(Op::Unary(*op));
            }
            IrExpr::Call(call) => self.call(chunk, call, None),
            IrExpr::Builtin(builtin, args) => {
                for arg in args {
                    self.expr(chunk, arg);
                }
                chunk.emit(Op::Builtin {
                    builtin: *builtin,
                    argc: args.len() as u32,
                });
            }
            IrExpr::MakeRecord(unit, fields, values) => {
                for value in values {
                    self.expr(chunk, value);
                }
                let record = self.record_of(unit, fields);
                chunk.emit(Op::Record {
                    record,
                    argc: values.len() as u32,
                });
            }
            IrExpr::Fold {
                function,
                init,
                list,
            } => {
                self.expr(chunk, init);
                self.expr(chunk, list);
                chunk.emit(Op::Fold {
                    function: *function as u32,
                });
            }
            IrExpr::Map { function, list } => {
                self.expr(chunk, list);
                chunk.emit(Op::Map {
                    function: *function as u32,
                });
            }
            IrExpr::Filter { function, list } => {
                self.expr(chunk, list);
                chunk.emit(Op::Filter {
                    function: *function as u32,
                });
            }
        }
    }

    /// Compiles a call; `piped_slot` appends a hidden-slot value as the
    /// final (piped) argument, matching the interpreter's argument order.
    fn call(&mut self, chunk: &mut ChunkGen, call: &IrCall, piped_slot: Option<usize>) {
        for arg in &call.args {
            self.expr(chunk, arg);
        }
        let mut argc = call.args.len() as u32;
        if let Some(slot) = piped_slot {
            chunk.emit(Op::Load(slot as u32));
            argc += 1;
        }
        chunk.emit(Op::Call {
            function: call.function as u32,
            argc,
        });
    }

    /// Compiles a block. With `want_value` the chunk leaves the block's
    /// value on the stack — the value of the *final* statement, where
    /// `if` propagates the chosen branch and every non-expression
    /// statement contributes `Unit` (the interpreter's `exec_block`
    /// contract).
    fn block(&mut self, chunk: &mut ChunkGen, stmts: &[IrStmt], want_value: bool) {
        let Some((last, init)) = stmts.split_last() else {
            if want_value {
                chunk.emit(Op::Unit);
            }
            return;
        };
        for stmt in init {
            self.stmt(chunk, stmt, false);
        }
        self.stmt(chunk, last, want_value);
    }

    fn stmt(&mut self, chunk: &mut ChunkGen, stmt: &IrStmt, want_value: bool) {
        match stmt {
            IrStmt::Store(slot, expr) => {
                self.expr(chunk, expr);
                chunk.emit(Op::Store(*slot as u32));
                if want_value {
                    chunk.emit(Op::Unit);
                }
            }
            IrStmt::AssignIndex {
                target,
                index,
                value,
            } => {
                self.expr(chunk, target);
                self.expr(chunk, index);
                self.expr(chunk, value);
                chunk.emit(Op::IndexAssign);
                if want_value {
                    chunk.emit(Op::Unit);
                }
            }
            IrStmt::Pipeline {
                source,
                stages,
                sink,
            } => {
                self.expr(chunk, source);
                let piped = chunk.alloc_temp();
                chunk.emit(Op::Store(piped as u32));
                for stage in stages {
                    self.call(chunk, stage, Some(piped));
                    chunk.emit(Op::Store(piped as u32));
                }
                match sink {
                    IrSink::Channel(chan) => {
                        chunk.emit(Op::Load(piped as u32));
                        self.expr(chunk, chan);
                        chunk.emit(Op::Send);
                    }
                    IrSink::Call(call) => {
                        self.call(chunk, call, Some(piped));
                        chunk.emit(Op::Pop);
                    }
                    IrSink::Discard => {}
                }
                if want_value {
                    chunk.emit(Op::Unit);
                }
            }
            IrStmt::If { cond, then, els } => {
                self.expr(chunk, cond);
                let to_else = chunk.emit(Op::JumpIfFalse(0));
                self.block(chunk, then, want_value);
                let to_end = chunk.emit(Op::Jump(0));
                chunk.patch_here(to_else);
                self.block(chunk, els, want_value);
                chunk.patch_here(to_end);
            }
            IrStmt::For { slot, iter, body } => {
                self.expr(chunk, iter);
                let list_slot = chunk.alloc_temp();
                chunk.emit(Op::ForPrep {
                    list_slot: list_slot as u32,
                });
                let head = chunk.emit(Op::ForNext {
                    list_slot: list_slot as u32,
                    var_slot: *slot as u32,
                    exit: 0,
                });
                self.block(chunk, body, false);
                chunk.emit(Op::Jump(head as u32));
                chunk.patch_here(head);
                if want_value {
                    chunk.emit(Op::Unit);
                }
            }
            IrStmt::Expr(expr) => {
                self.expr(chunk, expr);
                if !want_value {
                    chunk.emit(Op::Pop);
                }
            }
        }
    }

    /// Compiles one routing rule: thread the arriving message (in
    /// `msg_slot`) through the stages — a unit-returning stage consumes
    /// it — then run the sink. Mirrors `InterpreterLogic::on_value`,
    /// including the lenient rule-level send.
    fn rule(&mut self, process: &ProcessIr, rule: &crate::ir::RouteRule) -> CompiledRule {
        let mut chunk = ChunkGen::new(process.frame_size);
        let msg_slot = chunk.alloc_temp();
        let mut consumed_jumps = Vec::new();
        for stage in &rule.stages {
            self.call(&mut chunk, stage, Some(msg_slot));
            consumed_jumps.push(chunk.emit(Op::JumpIfUnit(0)));
            chunk.emit(Op::Store(msg_slot as u32));
        }
        match &rule.sink {
            IrSink::Channel(chan) => {
                chunk.emit(Op::Load(msg_slot as u32));
                self.expr(&mut chunk, chan);
                chunk.emit(Op::SendRule);
            }
            IrSink::Call(call) => {
                self.call(&mut chunk, call, Some(msg_slot));
                chunk.emit(Op::Pop);
            }
            IrSink::Discard => {}
        }
        for jump in consumed_jumps {
            chunk.patch_here(jump);
        }
        chunk.emit(Op::Unit);
        chunk.emit(Op::Return);
        CompiledRule {
            source_param: rule.source_param,
            msg_slot,
            chunk: chunk.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower;
    use flick_lang::compile_to_ast;

    fn compiled(src: &str, proc_name: &str) -> CompiledProgram {
        compile(&lower(&compile_to_ast(src).unwrap(), proc_name).unwrap())
    }

    const ROUTER: &str = r#"
type cmd: record
  key : string

proc P: (cmd/cmd client, [cmd/cmd] backends)
  backends => client
  client => target_backend(backends)

fun target_backend: ([-/cmd] backends, req: cmd) -> ()
  let target = hash(req.key) mod len(backends)
  req => backends[target]
"#;

    #[test]
    fn router_compiles_to_flat_chunks() {
        let program = compiled(ROUTER, "P");
        assert_eq!(program.functions.len(), 1);
        assert_eq!(program.rules.len(), 2);
        assert_eq!(program.rules[0].source_param, 1, "backends => client");
        assert_eq!(program.rules[1].source_param, 0, "client => stage");
        let body = &program.functions[0].chunk;
        assert!(body.code.iter().any(|op| matches!(op, Op::Field { .. })));
        assert!(matches!(body.code.last(), Some(Op::Return)));
        // The pipeline inside the function uses the strict send; the
        // channel-sink rule uses the lenient one.
        assert!(body.code.contains(&Op::Send));
        assert!(program.rules[0].chunk.code.contains(&Op::SendRule));
    }

    #[test]
    fn constants_pool_dedups_repeated_literals() {
        let src = r#"
fun f: (x: integer) -> (integer)
  let a = x + 40
  let b = a * 40
  let c = b - 40
  c + 7

type cmd: record
  key : string

proc P: (cmd/cmd c)
  c => c
"#;
        let program = compiled(src, "P");
        let forty = program
            .consts
            .iter()
            .filter(|v| **v == Value::Int(40))
            .count();
        assert_eq!(
            forty, 1,
            "repeated literal must intern: {:?}",
            program.consts
        );
        assert_eq!(
            program
                .consts
                .iter()
                .filter(|v| **v == Value::Int(7))
                .count(),
            1
        );
    }

    #[test]
    fn jumps_are_patched_within_bounds() {
        // Deep nesting and a long loop body stress jump-target widths:
        // every target must land inside the chunk.
        let mut src = String::from("fun f: (x: integer) -> (integer)\n");
        for level in 0..8 {
            let ind = "  ".repeat(level + 1);
            src.push_str(&format!("{ind}if x > {level}:\n"));
            if level == 7 {
                src.push_str(&format!("{ind}  x + 8\n"));
            }
        }
        for level in (0..8).rev() {
            let ind = "  ".repeat(level + 1);
            src.push_str(&format!("{ind}else:\n{ind}  x - {level}\n"));
        }
        src.push_str("\ntype cmd: record\n  key : string\n\nproc P: (cmd/cmd c)\n  c => c\n");
        let program = compiled(&src, "P");
        let chunk = &program.functions[0].chunk;
        for op in &chunk.code {
            let target = match op {
                Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfUnit(t) => *t,
                Op::ForNext { exit, .. } => *exit,
                _ => continue,
            };
            assert!(
                (target as usize) <= chunk.code.len(),
                "jump target {target} escapes chunk of {} ops",
                chunk.code.len()
            );
        }
    }

    #[test]
    fn field_sites_seed_from_unambiguous_layouts() {
        let typed = compile_to_ast(ROUTER).unwrap();
        let ir = lower(&typed, "P").unwrap();
        let layouts = vec![("cmd".to_string(), vec!["key".to_string()])];
        let seeded = compile_with_layouts(&ir, &layouts);
        assert_eq!(seeded.field_sites(), 1);
        assert_eq!(seeded.field_offsets[0], 0, "`key` is field 0 of cmd");
        // Without layouts the site starts unseeded.
        let unseeded = compile(&ir);
        assert_eq!(unseeded.field_offsets[0], NO_OFFSET);
        // Conflicting layouts refuse to seed.
        let conflicting = vec![
            ("cmd".to_string(), vec!["key".to_string()]),
            (
                "resp".to_string(),
                vec!["status".to_string(), "key".to_string()],
            ),
        ];
        let ambiguous = compile_with_layouts(&ir, &conflicting);
        assert_eq!(ambiguous.field_offsets[0], NO_OFFSET);
    }

    #[test]
    fn for_loops_compile_to_preps_and_backward_jumps() {
        let src = r#"
fun f: (xs: [integer]) -> (integer)
  for x in xs:
    let y = x + 1
  len(xs)

type cmd: record
  key : string

proc P: (cmd/cmd c)
  c => c
"#;
        let program = compiled(src, "P");
        let chunk = &program.functions[0].chunk;
        let prep = chunk
            .code
            .iter()
            .position(|op| matches!(op, Op::ForPrep { .. }))
            .expect("loop prep emitted");
        let head = prep + 1;
        assert!(matches!(chunk.code[head], Op::ForNext { .. }));
        let back = chunk
            .code
            .iter()
            .position(|op| matches!(op, Op::Jump(t) if (*t as usize) == head))
            .expect("backward jump to the loop head");
        assert!(back > head);
        // Hidden loop state lives above the IR frame.
        assert!(chunk.frame_size > program.functions[0].params);
    }
}
