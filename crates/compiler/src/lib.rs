//! The FLICK compiler: typed AST → executable task-graph factories.
//!
//! The paper's compiler translates FLICK programs into C++ task graphs
//! linked against the platform runtime. This crate performs the same
//! translation against the Rust runtime (see `DESIGN.md` §3, substitution 2):
//!
//! * [`grammar_gen`] synthesises a wire-format grammar from the
//!   serialisation annotations of a FLICK `type` declaration (Listing 1,
//!   lines 1–9), so that input/output tasks get parsers specialised to the
//!   program's data types;
//! * [`projection`] derives the field projection — the set of message fields
//!   the program actually accesses — so parsers skip everything else;
//! * [`ir`] lowers function and process bodies to a slot-resolved expression
//!   IR (all variable references are resolved to frame indices at compile
//!   time; no name lookups happen on the data path);
//! * [`bytecode`] lowers the IR once more into compact chunks of
//!   pre-decoded ops (constants pool, absolute jumps, grammar-seeded
//!   field-offset sites);
//! * [`vm`] executes those chunks with a direct-threaded dispatch loop —
//!   the default execution mode (`ExecMode::Vm`);
//! * [`interp`] evaluates the tree-shaped IR inside compute tasks from a
//!   pre-sized frame of values — kept as the `ExecMode::Interp` ablation
//!   baseline and as the semantic reference the VM is tested against;
//! * [`logic`] wraps the interpreter in the runtime's `ComputeLogic` trait,
//!   including the specialised `foldt` merge logic;
//! * [`factory`] assembles everything into a `GraphFactory` the platform can
//!   deploy.
//!
//! # Examples
//!
//! ```
//! use flick_compiler::{compile_source, CompileOptions};
//!
//! let src = r#"
//! type cmd: record
//!   key : string
//!
//! proc Memcached: (cmd/cmd client, [cmd/cmd] backends)
//!   backends => client
//!   client => target_backend(backends)
//!
//! fun target_backend: ([-/cmd] backends, req: cmd) -> ()
//!   let target = hash(req.key) mod len(backends)
//!   req => backends[target]
//! "#;
//!
//! let service = compile_source(src, "Memcached", &CompileOptions::default()).unwrap();
//! assert_eq!(service.process_name(), "Memcached");
//! ```

pub mod bytecode;
pub mod error;
pub mod factory;
pub mod grammar_gen;
pub mod interp;
pub mod ir;
pub mod logic;
pub mod projection;
pub mod vm;

pub use error::CompileError;
pub use factory::{CompileOptions, CompiledService};

use flick_lang::TypedProgram;
use std::sync::Arc;

/// Compiles FLICK source text into a deployable service for process `proc_name`.
pub fn compile_source(
    source: &str,
    proc_name: &str,
    options: &CompileOptions,
) -> Result<Arc<CompiledService>, CompileError> {
    let typed = flick_lang::compile_to_ast(source).map_err(CompileError::Lang)?;
    compile(&typed, proc_name, options)
}

/// Compiles an already type-checked program into a deployable service.
pub fn compile(
    typed: &TypedProgram,
    proc_name: &str,
    options: &CompileOptions,
) -> Result<Arc<CompiledService>, CompileError> {
    factory::CompiledService::compile(typed, proc_name, options).map(Arc::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_source_rejects_unknown_process() {
        let src = "type t: record\n  key : string\n\nproc P: (t/t c)\n  c => c\n";
        let err = compile_source(src, "Missing", &CompileOptions::default()).unwrap_err();
        assert!(err.to_string().contains("Missing"));
    }

    #[test]
    fn compile_source_rejects_invalid_program() {
        let err = compile_source(
            "fun f: (x: integer) -> (integer)\n  f(x)\n",
            "P",
            &CompileOptions::default(),
        );
        assert!(err.is_err());
    }
}
