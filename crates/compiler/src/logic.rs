//! Compute-task logic generated from FLICK programs.
//!
//! [`InterpreterLogic`] implements the runtime's `ComputeLogic` trait by
//! dispatching arriving messages to the routing rules of the lowered
//! process and interpreting them. [`FoldtLogic`] is the specialised
//! implementation of the `foldt` primitive (the paper notes that `foldt` has
//! a custom platform implementation for performance): it performs an ordered
//! merge of the key/value streams arriving on its input channels, combining
//! values of equal keys with the program's combine body, and emits the
//! aggregated stream when its inputs complete.

use crate::interp::{dict_key, field_value, EmitSink, Interpreter, RtVal};
use crate::ir::{ProcessIr, ProgramIr};
use flick_runtime::{ComputeLogic, Outputs, RuntimeError, SharedDict, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Describes how the process's channel parameters map onto the compute
/// task's input and output channel indices.
#[derive(Debug, Clone, Default)]
pub struct ChannelBindings {
    /// One entry per process channel parameter.
    pub params: Vec<ParamBinding>,
}

/// The runtime binding of one channel parameter.
#[derive(Debug, Clone, Default)]
pub struct ParamBinding {
    /// Compute-task input indices delivering messages from this parameter
    /// (one per connection for array parameters; empty for write-only
    /// channels).
    pub inputs: Vec<usize>,
    /// Compute-task output indices for sends to this parameter (empty for
    /// read-only channels).
    pub outputs: Vec<usize>,
}

impl ChannelBindings {
    /// Finds the parameter owning a given compute-task input index.
    pub fn param_of_input(&self, input: usize) -> Option<usize> {
        self.params.iter().position(|p| p.inputs.contains(&input))
    }

    /// Builds the frame value for parameter `idx` (a channel, channel array
    /// or dictionary reference).
    fn frame_value(&self, process: &ProcessIr, idx: usize) -> RtVal {
        let binding = &self.params[idx];
        if process.params[idx].is_array {
            RtVal::ChannelArray(binding.outputs.clone())
        } else {
            RtVal::Channel(binding.outputs.first().copied().unwrap_or(usize::MAX))
        }
    }
}

/// Per-service global state shared by every graph instance (the paper's
/// key/value abstraction for long-term state).
#[derive(Debug, Clone, Default)]
pub struct CompiledGlobals {
    dicts: Vec<(String, SharedDict)>,
}

impl CompiledGlobals {
    /// Creates the globals for a lowered process.
    pub fn for_process(process: &ProcessIr) -> Arc<Self> {
        Arc::new(CompiledGlobals {
            dicts: process
                .globals
                .iter()
                .map(|name| (name.clone(), SharedDict::new()))
                .collect(),
        })
    }

    /// Looks up a global dictionary by name (used by tests and tooling).
    pub fn dict(&self, name: &str) -> Option<&SharedDict> {
        self.dicts.iter().find(|(n, _)| n == name).map(|(_, d)| d)
    }
}

pub(crate) struct OutputsSink<'a, 'c> {
    pub(crate) outputs: &'a mut Outputs<'c>,
}

impl EmitSink for OutputsSink<'_, '_> {
    fn send(&mut self, channel: usize, value: Value) {
        self.outputs.emit(channel, value);
    }
}

/// The general compute logic for compiled FLICK processes.
pub struct InterpreterLogic {
    program: Arc<ProgramIr>,
    bindings: ChannelBindings,
    globals: Arc<CompiledGlobals>,
    /// The process frame: channel parameters followed by globals.
    base_frame: Vec<RtVal>,
}

impl InterpreterLogic {
    /// Creates the logic for one graph instance.
    pub fn new(
        program: Arc<ProgramIr>,
        bindings: ChannelBindings,
        globals: Arc<CompiledGlobals>,
    ) -> Self {
        let process = &program.process;
        let mut base_frame = Vec::with_capacity(process.frame_size);
        for idx in 0..process.params.len() {
            base_frame.push(bindings.frame_value(process, idx));
        }
        for name in &process.globals {
            let dict = globals.dict(name).cloned().unwrap_or_default();
            base_frame.push(RtVal::Dict(dict));
        }
        base_frame.resize(
            process.frame_size.max(base_frame.len()),
            RtVal::Val(Value::Unit),
        );
        InterpreterLogic {
            program,
            bindings,
            globals,
            base_frame,
        }
    }

    /// The per-service globals.
    pub fn globals(&self) -> &Arc<CompiledGlobals> {
        &self.globals
    }
}

impl ComputeLogic for InterpreterLogic {
    fn on_value(
        &mut self,
        input: usize,
        value: Value,
        out: &mut Outputs<'_>,
    ) -> Result<(), RuntimeError> {
        let Some(param) = self.bindings.param_of_input(input) else {
            return Ok(());
        };
        let interp = Interpreter::new(&self.program);
        let mut sink = OutputsSink { outputs: out };
        for rule in &self.program.process.rules {
            if rule.source_param != param {
                continue;
            }
            let mut frame = self.base_frame.clone();
            // Thread the arriving message through the rule's stages.
            let mut current = RtVal::Val(value.clone());
            let mut failed = false;
            for stage in &rule.stages {
                let mut args = Vec::with_capacity(stage.args.len() + 1);
                for arg in &stage.args {
                    args.push(interp.eval(arg, &mut frame, &mut sink)?);
                }
                args.push(current);
                current = interp.call_function(stage.function, args, &mut sink)?;
                if matches!(current, RtVal::Val(Value::Unit)) {
                    // A unit-returning stage consumed the message.
                    failed = true;
                    break;
                }
            }
            if failed {
                continue;
            }
            match &rule.sink {
                crate::ir::IrSink::Channel(chan_expr) => {
                    let chan = interp.eval(chan_expr, &mut frame, &mut sink)?;
                    let value = current.into_value()?;
                    match chan {
                        RtVal::Channel(idx) => sink.send(idx, value),
                        RtVal::ChannelArray(idxs) if !idxs.is_empty() => sink.send(idxs[0], value),
                        _ => {}
                    }
                }
                crate::ir::IrSink::Call(call) => {
                    let mut args = Vec::with_capacity(call.args.len() + 1);
                    for arg in &call.args {
                        args.push(interp.eval(arg, &mut frame, &mut sink)?);
                    }
                    args.push(current);
                    interp.call_function(call.function, args, &mut sink)?;
                }
                crate::ir::IrSink::Discard => {}
            }
        }
        Ok(())
    }
}

/// The specialised merge logic for `foldt` (Listing 3 / Figure 3c).
pub struct FoldtLogic {
    program: Arc<ProgramIr>,
    /// When set, the combine body runs on the bytecode VM
    /// (`ExecMode::Vm`) with this compiled program and its field-site
    /// offset cache; otherwise the tree-walking interpreter runs it.
    vm: Option<(Arc<crate::bytecode::CompiledProgram>, Vec<u32>)>,
    /// Output index of the reducer channel.
    sink_output: usize,
    /// Number of inputs that have finished.
    finished_inputs: usize,
    /// Total number of inputs feeding this combine node.
    total_inputs: usize,
    /// The merged elements, ordered by key.
    merged: BTreeMap<String, Value>,
    emitted: bool,
}

impl FoldtLogic {
    /// Creates the merge logic with the interpreter executing the combine
    /// body.
    pub fn new(program: Arc<ProgramIr>, total_inputs: usize, sink_output: usize) -> Self {
        FoldtLogic {
            program,
            vm: None,
            sink_output,
            finished_inputs: 0,
            total_inputs,
            merged: BTreeMap::new(),
            emitted: false,
        }
    }

    /// Creates the merge logic with the bytecode VM executing the combine
    /// body.
    pub fn with_vm(
        program: Arc<ProgramIr>,
        compiled: Arc<crate::bytecode::CompiledProgram>,
        total_inputs: usize,
        sink_output: usize,
    ) -> Self {
        let cache = compiled.field_offsets.clone();
        let mut logic = Self::new(program, total_inputs, sink_output);
        logic.vm = Some((compiled, cache));
        logic
    }

    fn combine(
        &mut self,
        existing: Value,
        incoming: Value,
        key: &str,
    ) -> Result<Value, RuntimeError> {
        if let Some((compiled, cache)) = &mut self.vm {
            let foldt = compiled
                .foldt
                .as_ref()
                .ok_or_else(|| RuntimeError::Logic("process has no foldt".into()))?;
            let mut frame = vec![RtVal::Val(Value::Unit); foldt.chunk.frame_size];
            let (s1, s2, sk) = foldt.binder_slots;
            frame[s1] = RtVal::Val(existing);
            frame[s2] = RtVal::Val(incoming);
            frame[sk] = RtVal::Val(Value::Str(key.to_string()));
            let mut sink = crate::interp::CollectSink::default();
            let mut stack = Vec::new();
            let mut vm = crate::vm::Vm::new(compiled, cache);
            let result = vm.run_chunk(&foldt.chunk, &mut frame, &mut stack, &mut sink)?;
            // In the chunk encoding a body whose tail is not an expression
            // yields `Unit`; a well-typed combine body always produces the
            // (non-unit) element, so `Unit` here is the interpreter's
            // "no element" defect.
            return match result {
                RtVal::Val(Value::Unit) => {
                    Err(RuntimeError::Logic("foldt body produced no element".into()))
                }
                other => other.into_value(),
            };
        }
        let foldt = self
            .program
            .process
            .foldt
            .as_ref()
            .ok_or_else(|| RuntimeError::Logic("process has no foldt".into()))?;
        let interp = Interpreter::new(&self.program);
        let mut frame = vec![RtVal::Val(Value::Unit); foldt.frame_size];
        let (s1, s2, sk) = foldt.binder_slots;
        frame[s1] = RtVal::Val(existing);
        frame[s2] = RtVal::Val(incoming);
        frame[sk] = RtVal::Val(Value::Str(key.to_string()));
        let mut sink = crate::interp::CollectSink::default();
        let result = interp.exec_block(&foldt.body, &mut frame, &mut sink)?;
        result
            .map(RtVal::into_value)
            .transpose()?
            .ok_or_else(|| RuntimeError::Logic("foldt body produced no element".into()))
    }

    fn key_of(&self, value: &Value) -> Option<String> {
        let foldt = self.program.process.foldt.as_ref()?;
        match value {
            Value::Msg(msg) => Some(dict_key(&field_value(msg, &foldt.key_field))),
            other => Some(dict_key(other)),
        }
    }
}

impl ComputeLogic for FoldtLogic {
    fn on_value(
        &mut self,
        _input: usize,
        value: Value,
        _out: &mut Outputs<'_>,
    ) -> Result<(), RuntimeError> {
        let Some(key) = self.key_of(&value) else {
            return Ok(());
        };
        match self.merged.remove(&key) {
            Some(existing) => {
                let combined = self.combine(existing, value, &key)?;
                self.merged.insert(key, combined);
            }
            None => {
                self.merged.insert(key, value);
            }
        }
        Ok(())
    }

    fn on_input_finished(
        &mut self,
        _input: usize,
        out: &mut Outputs<'_>,
    ) -> Result<(), RuntimeError> {
        self.finished_inputs += 1;
        if self.finished_inputs >= self.total_inputs && !self.emitted {
            self.emitted = true;
            // Emit the aggregated stream in key order.
            for (_key, value) in std::mem::take(&mut self.merged) {
                out.emit(self.sink_output, value);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower;
    use flick_grammar::{Message, MsgValue};
    use flick_lang::compile_to_ast;
    use flick_runtime::channel::TaskChannel;
    use flick_runtime::task::{SchedulingPolicy, TaskId, TaskStatus};
    use flick_runtime::tasks::ComputeTask;
    use flick_runtime::Task as _;
    use flick_runtime::{RuntimeMetrics, TaskContext};

    fn ctx() -> TaskContext {
        TaskContext::new(
            SchedulingPolicy::NonCooperative,
            RuntimeMetrics::new_shared(),
        )
    }

    fn kv_msg(key: &str, value: &str) -> Value {
        let mut m = Message::new("kv");
        m.set("key", MsgValue::Str(key.into()));
        m.set("value", MsgValue::Str(value.into()));
        Value::Msg(m)
    }

    const PROXY: &str = r#"
type cmd: record
  key : string

proc Memcached: (cmd/cmd client, [cmd/cmd] backends)
  backends => client
  client => target_backend(backends)

fun target_backend: ([-/cmd] backends, req: cmd) -> ()
  let target = hash(req.key) mod len(backends)
  req => backends[target]
"#;

    fn proxy_logic(backends: usize) -> (Arc<ProgramIr>, InterpreterLogic) {
        let typed = compile_to_ast(PROXY).unwrap();
        let program = Arc::new(lower(&typed, "Memcached").unwrap());
        let bindings = ChannelBindings {
            params: vec![
                ParamBinding {
                    inputs: vec![0],
                    outputs: vec![0],
                },
                ParamBinding {
                    inputs: (1..=backends).collect(),
                    outputs: (1..=backends).collect(),
                },
            ],
        };
        let globals = CompiledGlobals::for_process(&program.process);
        let logic = InterpreterLogic::new(Arc::clone(&program), bindings, globals);
        (program, logic)
    }

    #[test]
    fn proxy_routes_requests_to_backends_and_responses_to_client() {
        let (_program, logic) = proxy_logic(3);
        // Assemble a compute task with 4 inputs (client + 3 backends) and 4
        // matching outputs.
        let mut input_producers = Vec::new();
        let mut input_consumers = Vec::new();
        let mut output_producers = Vec::new();
        let mut output_consumers = Vec::new();
        for i in 0..4 {
            let (tx, rx) = TaskChannel::bounded(64, TaskId(100 + i));
            input_producers.push(tx);
            input_consumers.push(rx);
            let (tx, rx) = TaskChannel::bounded(64, TaskId(200 + i));
            output_producers.push(tx);
            output_consumers.push(rx);
        }
        let mut task =
            ComputeTask::new("proxy", input_consumers, output_producers, Box::new(logic));

        // A client request is routed to exactly one backend output (1..=3).
        let mut m = Message::new("cmd");
        m.set("key", MsgValue::Str("user:7".into()));
        input_producers[0].push(Value::Msg(m)).unwrap();
        task.run(&mut ctx());
        let routed: Vec<usize> = (1..4).filter(|i| output_consumers[*i].len() == 1).collect();
        assert_eq!(
            routed.len(),
            1,
            "exactly one backend should receive the request"
        );
        assert_eq!(output_consumers[0].len(), 0);

        // A backend response goes back to the client output 0.
        let mut resp = Message::new("cmd");
        resp.set("key", MsgValue::Str("user:7".into()));
        input_producers[routed[0]].push(Value::Msg(resp)).unwrap();
        task.run(&mut ctx());
        assert_eq!(output_consumers[0].len(), 1);
    }

    #[test]
    fn globals_are_shared_across_logic_instances() {
        let src = r#"
type cmd: record
  opcode : integer {signed=false, size=1}
  keylen : integer {signed=false, size=2}
  key : string {size=keylen}

proc memcached: (cmd/cmd client, [cmd/cmd] backends)
  global cache := empty_dict
  backends => update_cache(cache) => client
  client => test_cache(client, backends, cache)

fun update_cache: (cache: ref dict<string*cmd>, resp: cmd) -> (cmd)
  if resp.opcode = 12:
    cache[resp.key] := resp
  resp

fun test_cache: (-/cmd client, [-/cmd] backends, cache: ref dict<string*cmd>, req: cmd) -> ()
  if cache[req.key] = None or req.opcode <> 12:
    let target = hash(req.key) mod len(backends)
    req => backends[target]
  else:
    cache[req.key] => client
"#;
        let typed = compile_to_ast(src).unwrap();
        let program = Arc::new(lower(&typed, "memcached").unwrap());
        let globals = CompiledGlobals::for_process(&program.process);
        let bindings = ChannelBindings {
            params: vec![
                ParamBinding {
                    inputs: vec![0],
                    outputs: vec![0],
                },
                ParamBinding {
                    inputs: vec![1],
                    outputs: vec![1],
                },
            ],
        };
        let a = InterpreterLogic::new(Arc::clone(&program), bindings.clone(), Arc::clone(&globals));
        let b = InterpreterLogic::new(program, bindings, Arc::clone(&globals));
        assert!(Arc::ptr_eq(a.globals(), b.globals()));
        assert!(globals.dict("cache").is_some());
        assert!(globals.dict("missing").is_none());
    }

    #[test]
    fn foldt_logic_merges_streams_by_key() {
        let src = r#"
type kv: record
  key : string
  value : string

proc hadoop: ([kv/-] mappers, -/kv reducer):
  if all_ready(mappers):
    let result = foldt on mappers ordering elem e1, e2 by elem.key as e_key:
      let v = combine(e1.value, e2.value)
      kv(e_key, v)
    result => reducer

fun combine: (v1: string, v2: string) -> (string)
  v1 + v2
"#;
        let typed = compile_to_ast(src).unwrap();
        let program = Arc::new(lower(&typed, "hadoop").unwrap());
        let logic = FoldtLogic::new(program, 2, 0);

        let mut input_producers = Vec::new();
        let mut input_consumers = Vec::new();
        for i in 0..2 {
            let (tx, rx) = TaskChannel::bounded(64, TaskId(300 + i));
            input_producers.push(tx);
            input_consumers.push(rx);
        }
        let (out_tx, out_rx) = TaskChannel::bounded(64, TaskId(400));
        let mut task = ComputeTask::new("foldt", input_consumers, vec![out_tx], Box::new(logic));

        input_producers[0].push(kv_msg("apple", "2")).unwrap();
        input_producers[0].push(kv_msg("pear", "1")).unwrap();
        input_producers[1].push(kv_msg("apple", "3")).unwrap();
        task.run(&mut ctx());
        assert_eq!(
            out_rx.len(),
            0,
            "nothing is emitted until the inputs finish"
        );

        input_producers[0].close();
        input_producers[1].close();
        let status = task.run(&mut ctx());
        assert_eq!(status, TaskStatus::Finished);
        // Two keys, in order: apple (combined "2"+"3" = "23"), pear.
        let first = out_rx.pop().unwrap().into_msg().unwrap();
        assert_eq!(first.str_field("key"), Some("apple"));
        assert_eq!(first.str_field("value"), Some("23"));
        let second = out_rx.pop().unwrap().into_msg().unwrap();
        assert_eq!(second.str_field("key"), Some("pear"));
        assert!(out_rx.is_finished());
    }
}
