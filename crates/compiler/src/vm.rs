//! The direct-threaded bytecode VM.
//!
//! Executes the [`Chunk`]s produced by [`crate::bytecode`] with a single
//! flat dispatch loop — `loop { match op }` over pre-decoded operands —
//! instead of the interpreter's recursive walk over boxed IR nodes. All
//! value semantics (operator coercions, equality, builtins, the
//! string-exploding `fold`/`map`/`filter` list coercion) are the
//! *interpreter's own* `pub(crate)` helpers, so the two execution modes
//! share one implementation of every observable behaviour and cannot
//! drift; the differential property test in `tests/language_properties.rs`
//! holds them to that.
//!
//! Field projections (`req.key`) execute through per-site inline caches:
//! each `Op::Field` carries a site id into a per-logic offset table,
//! seeded from the grammar's record layouts at compile time and verified
//! (name check) on every hit, so a projection is an index read instead of
//! a name scan once the first message of a shape has been seen.
//!
//! Runtime logic errors are annotated `[at fn \`name\`, pc N]` via the
//! shared helpers in [`crate::error`], mirroring the interpreter's
//! `[at fn \`name\`, stmt N]` so diagnostics stay comparable.

use crate::bytecode::{Chunk, CompiledProgram, Op, NO_OFFSET};
use crate::error::{locate, locate_frame};
use crate::interp::{binary, dict_key, eval_builtin, list_items, to_msg_value, EmitSink, RtVal};
use crate::logic::{ChannelBindings, CompiledGlobals, OutputsSink};
use flick_grammar::{Message, MsgValue};
use flick_lang::ast::UnOp;
use flick_runtime::{ComputeLogic, Outputs, RuntimeError, Value};
use std::sync::Arc;

/// Pops the top of the operand stack. Compiled chunks are stack-balanced
/// by construction, so an underflow is a compiler bug, not a program
/// error.
fn pop(stack: &mut Vec<RtVal>) -> RtVal {
    stack.pop().expect("vm operand stack underflow")
}

fn msg_field_value(value: &MsgValue) -> Value {
    match value {
        MsgValue::UInt(v) => Value::Int(*v as i64),
        MsgValue::Int(v) => Value::Int(*v),
        MsgValue::Bool(b) => Value::Bool(*b),
        MsgValue::Str(s) => Value::Str(s.clone()),
        MsgValue::Bytes(b) => Value::Bytes(b.clone()),
    }
}

/// A bytecode executor borrowing the program and a mutable field-site
/// offset cache (owned by the logic instance so it warms up across
/// messages).
pub struct Vm<'p> {
    program: &'p CompiledProgram,
    field_cache: &'p mut [u32],
}

impl<'p> Vm<'p> {
    /// Creates an executor. `field_cache` must have
    /// [`CompiledProgram::field_sites`] entries (start from a copy of
    /// [`CompiledProgram::field_offsets`]).
    pub fn new(program: &'p CompiledProgram, field_cache: &'p mut [u32]) -> Self {
        debug_assert_eq!(field_cache.len(), program.field_sites());
        Vm {
            program,
            field_cache,
        }
    }

    /// Calls function `index` with the given arguments, mirroring
    /// `Interpreter::call_function` (same arity errors, same `Unit`
    /// default).
    pub fn call_function(
        &mut self,
        index: usize,
        args: Vec<RtVal>,
        sink: &mut dyn EmitSink,
    ) -> Result<RtVal, RuntimeError> {
        let argc = args.len();
        let mut stack = Vec::with_capacity(argc + 8);
        stack.extend(args);
        self.call_indexed(index, argc, &mut stack, sink)
    }

    fn call_indexed(
        &mut self,
        index: usize,
        argc: usize,
        stack: &mut Vec<RtVal>,
        sink: &mut dyn EmitSink,
    ) -> Result<RtVal, RuntimeError> {
        let function = self
            .program
            .functions
            .get(index)
            .ok_or_else(|| RuntimeError::Logic(format!("unknown function index {index}")))?;
        if argc != function.params {
            // Drop the staged arguments so the caller's stack stays
            // balanced past the error.
            stack.truncate(stack.len() - argc);
            return Err(RuntimeError::Logic(format!(
                "function `{}` expects {} arguments, got {}",
                function.name, function.params, argc
            )));
        }
        let mut frame = vec![RtVal::Val(Value::Unit); function.chunk.frame_size.max(argc)];
        for i in (0..argc).rev() {
            frame[i] = pop(stack);
        }
        self.run_chunk(&function.chunk, &mut frame, stack, sink)
            .map_err(|e| locate_frame(e, &function.name))
    }

    /// Runs one chunk to its `Return`, leaving the operand stack at its
    /// entry depth (also on error).
    pub fn run_chunk(
        &mut self,
        chunk: &Chunk,
        frame: &mut Vec<RtVal>,
        stack: &mut Vec<RtVal>,
        sink: &mut dyn EmitSink,
    ) -> Result<RtVal, RuntimeError> {
        let base = stack.len();
        let result = self.dispatch(chunk, frame, stack, sink);
        stack.truncate(base);
        result
    }

    /// The dispatch loop. Failing ops annotate the error with the program
    /// counter (innermost location wins); the enclosing call adds the
    /// function name.
    fn dispatch(
        &mut self,
        chunk: &Chunk,
        frame: &mut Vec<RtVal>,
        stack: &mut Vec<RtVal>,
        sink: &mut dyn EmitSink,
    ) -> Result<RtVal, RuntimeError> {
        /// `?` with a pc-located error.
        macro_rules! vmtry {
            ($pc:expr, $e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(err) => return Err(locate(err, || format!("pc {}", $pc))),
                }
            };
        }
        let code = &chunk.code;
        let mut pc = 0usize;
        loop {
            match &code[pc] {
                Op::Const(idx) => {
                    stack.push(RtVal::Val(self.program.consts[*idx as usize].clone()))
                }
                Op::Unit => stack.push(RtVal::Val(Value::Unit)),
                Op::Load(slot) => {
                    let value = vmtry!(
                        pc,
                        frame.get(*slot as usize).cloned().ok_or_else(|| {
                            RuntimeError::Logic(format!("frame slot {slot} out of range"))
                        })
                    );
                    stack.push(value);
                }
                Op::Store(slot) => {
                    let slot = *slot as usize;
                    let value = pop(stack);
                    if slot >= frame.len() {
                        frame.resize(slot + 1, RtVal::Val(Value::Unit));
                    }
                    frame[slot] = value;
                }
                Op::Pop => {
                    pop(stack);
                }
                Op::Field { name, site } => {
                    let base = pop(stack);
                    let name = self.program.names[*name as usize].as_str();
                    match base {
                        RtVal::Val(Value::Msg(msg)) => {
                            let value = self.project_field(&msg, name, *site as usize);
                            stack.push(RtVal::Val(value));
                        }
                        other => vmtry!(
                            pc,
                            Err(RuntimeError::Logic(format!(
                                "cannot read field `{name}` of {other:?}"
                            )))
                        ),
                    }
                }
                Op::Index => {
                    let index = pop(stack);
                    let base = pop(stack);
                    let value = vmtry!(pc, index_value(base, index));
                    stack.push(value);
                }
                Op::IndexAssign => {
                    let value = pop(stack);
                    let key = pop(stack);
                    let target = pop(stack);
                    let value = vmtry!(pc, value.into_value());
                    match target {
                        RtVal::Dict(dict) => {
                            dict.set(dict_key(vmtry!(pc, key.as_value())), value);
                        }
                        other => vmtry!(
                            pc,
                            Err(RuntimeError::Logic(format!(
                                "cannot index-assign into {other:?}"
                            )))
                        ),
                    }
                }
                Op::Binary(op) => {
                    let r = pop(stack);
                    let l = pop(stack);
                    let value = vmtry!(pc, (|| binary(*op, l.as_value()?, r.as_value()?))());
                    stack.push(RtVal::Val(value));
                }
                Op::Unary(op) => {
                    let v = pop(stack);
                    let v = vmtry!(pc, v.as_value());
                    stack.push(RtVal::Val(match op {
                        UnOp::Neg => Value::Int(-v.as_int().unwrap_or(0)),
                        UnOp::Not => Value::Bool(!v.truthy()),
                    }));
                }
                Op::Call { function, argc } => {
                    let result = vmtry!(
                        pc,
                        self.call_indexed(*function as usize, *argc as usize, stack, sink)
                    );
                    stack.push(result);
                }
                Op::Builtin { builtin, argc } => {
                    let at = stack.len() - *argc as usize;
                    let args = stack.split_off(at);
                    let result = vmtry!(pc, eval_builtin(*builtin, args));
                    stack.push(result);
                }
                Op::Record { record, argc } => {
                    let template = &self.program.records[*record as usize];
                    let at = stack.len() - *argc as usize;
                    let values = stack.split_off(at);
                    let mut msg = Message::with_capacity(template.unit.clone(), values.len());
                    for (name, value) in template.fields.iter().zip(values) {
                        let value = vmtry!(pc, value.into_value());
                        msg.set(name.clone(), to_msg_value(value));
                    }
                    stack.push(RtVal::Val(Value::Msg(msg)));
                }
                Op::Fold { function } => {
                    let items = vmtry!(pc, list_items(pop(stack)));
                    let mut acc = pop(stack);
                    for item in items {
                        acc = vmtry!(
                            pc,
                            self.call_function(
                                *function as usize,
                                vec![acc, RtVal::Val(item)],
                                sink
                            )
                        );
                    }
                    stack.push(acc);
                }
                Op::Map { function } => {
                    let items = vmtry!(pc, list_items(pop(stack)));
                    let mut out = Vec::with_capacity(items.len());
                    for item in items {
                        let mapped = vmtry!(
                            pc,
                            self.call_function(*function as usize, vec![RtVal::Val(item)], sink)
                        );
                        out.push(vmtry!(pc, mapped.into_value()));
                    }
                    stack.push(RtVal::Val(Value::List(out)));
                }
                Op::Filter { function } => {
                    let items = vmtry!(pc, list_items(pop(stack)));
                    let mut out = Vec::with_capacity(items.len());
                    for item in items {
                        let keep = vmtry!(
                            pc,
                            self.call_function(
                                *function as usize,
                                vec![RtVal::Val(item.clone())],
                                sink
                            )
                        );
                        if vmtry!(pc, keep.into_value()).truthy() {
                            out.push(item);
                        }
                    }
                    stack.push(RtVal::Val(Value::List(out)));
                }
                Op::Jump(target) => {
                    pc = *target as usize;
                    continue;
                }
                Op::JumpIfFalse(target) => {
                    let cond = vmtry!(pc, pop(stack).into_value());
                    if !cond.truthy() {
                        pc = *target as usize;
                        continue;
                    }
                }
                Op::JumpIfUnit(target) => {
                    if matches!(stack.last(), Some(RtVal::Val(Value::Unit))) {
                        pop(stack);
                        pc = *target as usize;
                        continue;
                    }
                }
                Op::ForPrep { list_slot } => {
                    let slot = *list_slot as usize;
                    match pop(stack) {
                        RtVal::Val(Value::List(mut items)) => {
                            items.reverse();
                            if slot >= frame.len() {
                                frame.resize(slot + 1, RtVal::Val(Value::Unit));
                            }
                            frame[slot] = RtVal::Val(Value::List(items));
                        }
                        other => vmtry!(
                            pc,
                            Err(RuntimeError::Logic(format!(
                                "`for` expects a list, found {other:?}"
                            )))
                        ),
                    }
                }
                Op::ForNext {
                    list_slot,
                    var_slot,
                    exit,
                } => {
                    let item = match &mut frame[*list_slot as usize] {
                        RtVal::Val(Value::List(items)) => items.pop(),
                        _ => None,
                    };
                    match item {
                        Some(item) => {
                            let slot = *var_slot as usize;
                            if slot >= frame.len() {
                                frame.resize(slot + 1, RtVal::Val(Value::Unit));
                            }
                            frame[slot] = RtVal::Val(item);
                        }
                        None => {
                            pc = *exit as usize;
                            continue;
                        }
                    }
                }
                Op::Send => {
                    let chan = pop(stack);
                    let value = vmtry!(pc, pop(stack).into_value());
                    match chan {
                        RtVal::Channel(idx) => sink.send(idx, value),
                        RtVal::ChannelArray(ref idxs) if idxs.len() == 1 => {
                            sink.send(idxs[0], value)
                        }
                        other => vmtry!(
                            pc,
                            Err(RuntimeError::Logic(format!(
                                "pipeline destination is not a channel: {other:?}"
                            )))
                        ),
                    }
                }
                Op::SendRule => {
                    let chan = pop(stack);
                    let value = vmtry!(pc, pop(stack).into_value());
                    match chan {
                        RtVal::Channel(idx) => sink.send(idx, value),
                        RtVal::ChannelArray(idxs) if !idxs.is_empty() => sink.send(idxs[0], value),
                        _ => {}
                    }
                }
                Op::Return => return Ok(stack.pop().unwrap_or(RtVal::Val(Value::Unit))),
            }
            pc += 1;
        }
    }

    /// Reads a message field through the site's inline offset cache: a
    /// cached offset whose name still matches is an index read; otherwise
    /// fall back to the linear scan and re-seed the cache with the offset
    /// found.
    fn project_field(&mut self, msg: &Message, name: &str, site: usize) -> Value {
        let hint = self.field_cache[site];
        if hint != NO_OFFSET {
            if let Some((field, value)) = msg.field_at(hint as usize) {
                if field == name {
                    return msg_field_value(value);
                }
            }
        }
        for (idx, (field, value)) in msg.iter().enumerate() {
            if field == name {
                self.field_cache[site] = idx as u32;
                return msg_field_value(value);
            }
        }
        Value::None
    }
}

/// `Op::Index` semantics, shared with the interpreter's `IrExpr::Index`
/// arm (same coercions, same error strings).
fn index_value(base: RtVal, index: RtVal) -> Result<RtVal, RuntimeError> {
    Ok(match base {
        RtVal::ChannelArray(indices) => {
            let i = index.as_value()?.as_int().ok_or_else(|| {
                RuntimeError::Logic("channel-array index must be an integer".into())
            })? as usize;
            let idx = indices
                .get(i)
                .copied()
                .ok_or_else(|| RuntimeError::Logic(format!("channel index {i} out of range")))?;
            RtVal::Channel(idx)
        }
        RtVal::Dict(dict) => RtVal::Val(dict.get(&dict_key(index.as_value()?))),
        RtVal::Val(Value::List(items)) => {
            let i = index.as_value()?.as_int().unwrap_or(0) as usize;
            RtVal::Val(items.get(i).cloned().unwrap_or(Value::None))
        }
        other => return Err(RuntimeError::Logic(format!("cannot index into {other:?}"))),
    })
}

/// The VM-backed compute logic for compiled FLICK processes — the
/// drop-in [`ExecMode::Vm`](flick_runtime::ExecMode) counterpart of
/// `InterpreterLogic`, with identical rule dispatch: every rule whose
/// source parameter owns the arriving input runs over a clone of the
/// base frame, a unit-returning stage consumes the message, and the
/// rule-level send is lenient.
pub struct VmLogic {
    compiled: Arc<CompiledProgram>,
    bindings: ChannelBindings,
    globals: Arc<CompiledGlobals>,
    /// The process frame: channel parameters, then globals.
    base_frame: Vec<RtVal>,
    /// Per-site field offsets, seeded from the grammar layouts and warmed
    /// by execution.
    field_cache: Vec<u32>,
    /// The operand stack, reused across messages so the steady-state
    /// per-message path does not allocate it.
    stack: Vec<RtVal>,
}

impl VmLogic {
    /// Creates the VM logic for one graph instance.
    pub fn new(
        compiled: Arc<CompiledProgram>,
        bindings: ChannelBindings,
        globals: Arc<CompiledGlobals>,
    ) -> Self {
        let process = &compiled.process;
        let mut base_frame = Vec::with_capacity(process.frame_size);
        for (idx, is_array) in process.param_is_array.iter().enumerate() {
            let binding = &bindings.params[idx];
            base_frame.push(if *is_array {
                RtVal::ChannelArray(binding.outputs.clone())
            } else {
                RtVal::Channel(binding.outputs.first().copied().unwrap_or(usize::MAX))
            });
        }
        for name in &process.globals {
            let dict = globals.dict(name).cloned().unwrap_or_default();
            base_frame.push(RtVal::Dict(dict));
        }
        base_frame.resize(
            process.frame_size.max(base_frame.len()),
            RtVal::Val(Value::Unit),
        );
        let field_cache = compiled.field_offsets.clone();
        VmLogic {
            compiled,
            bindings,
            globals,
            base_frame,
            field_cache,
            stack: Vec::with_capacity(16),
        }
    }

    /// The per-service globals.
    pub fn globals(&self) -> &Arc<CompiledGlobals> {
        &self.globals
    }
}

impl ComputeLogic for VmLogic {
    fn on_value(
        &mut self,
        input: usize,
        value: Value,
        out: &mut Outputs<'_>,
    ) -> Result<(), RuntimeError> {
        let Some(param) = self.bindings.param_of_input(input) else {
            return Ok(());
        };
        let compiled = Arc::clone(&self.compiled);
        let mut sink = OutputsSink { outputs: out };
        for rule in &compiled.rules {
            if rule.source_param != param {
                continue;
            }
            let mut frame = self.base_frame.clone();
            if frame.len() < rule.chunk.frame_size {
                frame.resize(rule.chunk.frame_size, RtVal::Val(Value::Unit));
            }
            frame[rule.msg_slot] = RtVal::Val(value.clone());
            let mut vm = Vm::new(&compiled, &mut self.field_cache);
            vm.run_chunk(&rule.chunk, &mut frame, &mut self.stack, &mut sink)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::compile;
    use crate::interp::{CollectSink, Interpreter};
    use crate::ir::{lower, ProgramIr};
    use crate::logic::ParamBinding;
    use flick_grammar::{Message, MsgValue};
    use flick_lang::compile_to_ast;
    use flick_runtime::channel::TaskChannel;
    use flick_runtime::task::{SchedulingPolicy, TaskId};
    use flick_runtime::tasks::ComputeTask;
    use flick_runtime::Task as _;
    use flick_runtime::{RuntimeMetrics, TaskContext};

    fn program(src: &str, proc_name: &str) -> ProgramIr {
        lower(&compile_to_ast(src).unwrap(), proc_name).unwrap()
    }

    #[allow(clippy::type_complexity)]
    fn call_both(
        program: &ProgramIr,
        name: &str,
        args: Vec<RtVal>,
    ) -> (
        Result<RtVal, RuntimeError>,
        Result<RtVal, RuntimeError>,
        Vec<(usize, Value)>,
        Vec<(usize, Value)>,
    ) {
        let index = program
            .functions
            .iter()
            .position(|f| f.name == name)
            .unwrap();
        let interp = Interpreter::new(program);
        let mut interp_sink = CollectSink::default();
        let interp_result = interp.call_function(index, args.clone(), &mut interp_sink);
        let compiled = compile(program);
        let mut cache = compiled.field_offsets.clone();
        let mut vm = Vm::new(&compiled, &mut cache);
        let mut vm_sink = CollectSink::default();
        let vm_result = vm.call_function(index, args, &mut vm_sink);
        (interp_result, vm_result, interp_sink.sent, vm_sink.sent)
    }

    const PROXY: &str = r#"
type cmd: record
  key : string

proc Memcached: (cmd/cmd client, [cmd/cmd] backends)
  backends => client
  client => target_backend(backends)

fun target_backend: ([-/cmd] backends, req: cmd) -> ()
  let target = hash(req.key) mod len(backends)
  req => backends[target]
"#;

    fn cmd_msg(key: &str) -> Value {
        let mut m = Message::new("cmd");
        m.set("key", MsgValue::Str(key.into()));
        Value::Msg(m)
    }

    #[test]
    fn vm_routes_like_the_interpreter() {
        let program = program(PROXY, "Memcached");
        for key in ["user:1", "user:2", "a", "zzz", ""] {
            let args = vec![RtVal::ChannelArray(vec![1, 2, 3]), RtVal::Val(cmd_msg(key))];
            let (i, v, i_sent, v_sent) = call_both(&program, "target_backend", args);
            assert!(i.is_ok() && v.is_ok());
            assert_eq!(i_sent, v_sent, "key {key:?} routed differently");
            assert_eq!(i_sent.len(), 1);
        }
    }

    #[test]
    fn vm_errors_match_interpreter_errors_with_comparable_locations() {
        let src = r#"
fun f: (x: integer) -> (integer)
  let y = 1
  x / (x - x)

type cmd: record
  key : string

proc P: (cmd/cmd c)
  c => c
"#;
        let program = program(src, "P");
        let (i, v, _, _) = call_both(&program, "f", vec![RtVal::Val(Value::Int(4))]);
        let RuntimeError::Logic(i_msg) = i.unwrap_err() else {
            panic!("logic error expected");
        };
        let RuntimeError::Logic(v_msg) = v.unwrap_err() else {
            panic!("logic error expected");
        };
        let (i_base, i_loc) = crate::error::split_located(&i_msg);
        let (v_base, v_loc) = crate::error::split_located(&v_msg);
        assert_eq!(i_base, "division by zero");
        assert_eq!(i_base, v_base);
        assert_eq!(i_loc, Some("fn `f`, stmt 1"));
        assert_eq!(v_loc, Some("fn `f`, pc 6"));
    }

    #[test]
    fn deep_loops_and_conditionals_agree() {
        let src = r#"
fun f: (xs: [integer]) -> (integer)
  let total = 0
  for x in xs:
    if x mod 2 = 0:
      let total = total + x
    else:
      let total = total - x
  total

type cmd: record
  key : string

proc P: (cmd/cmd c)
  c => c
"#;
        let program = program(src, "P");
        let xs: Vec<Value> = (0..100).map(Value::Int).collect();
        let (i, v, _, _) = call_both(&program, "f", vec![RtVal::Val(Value::List(xs))]);
        let i = i.unwrap().into_value().unwrap();
        let v = v.unwrap().into_value().unwrap();
        assert_eq!(i, v);
    }

    #[test]
    fn field_site_cache_survives_shape_changes() {
        // Same call site, messages with the field at different offsets:
        // the cache must verify and re-seed, never return a wrong field.
        let program = program(PROXY, "Memcached");
        let index = 0;
        let compiled = compile(&program);
        let mut cache = compiled.field_offsets.clone();
        let mut vm = Vm::new(&compiled, &mut cache);
        let mut sink = CollectSink::default();
        // First message: `key` is field 0.
        let args = vec![RtVal::ChannelArray(vec![1]), RtVal::Val(cmd_msg("a"))];
        vm.call_function(index, args, &mut sink).unwrap();
        // Second message: an extra field shifts `key` to offset 1.
        let mut shifted = Message::new("cmd");
        shifted.set("pad", MsgValue::Str("x".into()));
        shifted.set("key", MsgValue::Str("a".into()));
        let args = vec![
            RtVal::ChannelArray(vec![1]),
            RtVal::Val(Value::Msg(shifted)),
        ];
        vm.call_function(index, args, &mut sink).unwrap();
        // Both messages carried the same key, so despite the offset shift
        // both hash to the same backend channel.
        assert_eq!(sink.sent.len(), 2);
        assert_eq!(sink.sent[0].0, sink.sent[1].0);
    }

    #[test]
    fn vm_logic_drives_a_compute_task_like_interpreter_logic() {
        let typed = compile_to_ast(PROXY).unwrap();
        let program = Arc::new(lower(&typed, "Memcached").unwrap());
        let compiled = Arc::new(compile(&program));
        let bindings = ChannelBindings {
            params: vec![
                ParamBinding {
                    inputs: vec![0],
                    outputs: vec![0],
                },
                ParamBinding {
                    inputs: vec![1, 2, 3],
                    outputs: vec![1, 2, 3],
                },
            ],
        };
        let globals = CompiledGlobals::for_process(&program.process);
        let logic = VmLogic::new(compiled, bindings, globals);

        let mut input_producers = Vec::new();
        let mut input_consumers = Vec::new();
        let mut output_producers = Vec::new();
        let mut output_consumers = Vec::new();
        for i in 0..4 {
            let (tx, rx) = TaskChannel::bounded(64, TaskId(100 + i));
            input_producers.push(tx);
            input_consumers.push(rx);
            let (tx, rx) = TaskChannel::bounded(64, TaskId(200 + i));
            output_producers.push(tx);
            output_consumers.push(rx);
        }
        let mut task = ComputeTask::new(
            "proxy-vm",
            input_consumers,
            output_producers,
            Box::new(logic),
        );
        let mut ctx = TaskContext::new(
            SchedulingPolicy::NonCooperative,
            RuntimeMetrics::new_shared(),
        );

        input_producers[0].push(cmd_msg("user:7")).unwrap();
        task.run(&mut ctx);
        let routed: Vec<usize> = (1..4).filter(|i| output_consumers[*i].len() == 1).collect();
        assert_eq!(routed.len(), 1, "exactly one backend gets the request");
        assert_eq!(output_consumers[0].len(), 0);

        input_producers[routed[0]].push(cmd_msg("user:7")).unwrap();
        task.run(&mut ctx);
        assert_eq!(
            output_consumers[0].len(),
            1,
            "the backend response returns to the client"
        );
    }

    #[test]
    fn unit_returning_stage_consumes_the_message_in_vm_mode() {
        let src = r#"
type cmd: record
  key : string

proc P: (cmd/cmd c)
  c => maybe_fwd() => c

fun maybe_fwd: (req: cmd) -> (cmd)
  if req.key = "go":
    req
"#;
        let typed = compile_to_ast(src).unwrap();
        let program = Arc::new(lower(&typed, "P").unwrap());
        let compiled = Arc::new(compile(&program));
        let bindings = ChannelBindings {
            params: vec![ParamBinding {
                inputs: vec![0],
                outputs: vec![0],
            }],
        };
        let globals = CompiledGlobals::for_process(&program.process);
        let logic = VmLogic::new(compiled, bindings, globals);
        let (in_tx, in_rx) = TaskChannel::bounded(8, TaskId(1));
        let (out_tx, out_rx) = TaskChannel::bounded(8, TaskId(2));
        let mut task = ComputeTask::new("drop-vm", vec![in_rx], vec![out_tx], Box::new(logic));
        let mut ctx = TaskContext::new(
            SchedulingPolicy::NonCooperative,
            RuntimeMetrics::new_shared(),
        );
        in_tx.push(cmd_msg("stop")).unwrap();
        task.run(&mut ctx);
        assert_eq!(out_rx.len(), 0, "consumed messages must not be forwarded");
        in_tx.push(cmd_msg("go")).unwrap();
        task.run(&mut ctx);
        assert_eq!(out_rx.len(), 1, "matching messages pass the stage");
    }
}
