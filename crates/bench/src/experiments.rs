//! Experiment runners, one per figure.

use flick_net::listener::ConnectOptions;
use flick_net::{SimNetwork, StackModel};
use flick_runtime::scheduler::Scheduler;
use flick_runtime::task::TaskId;
use flick_runtime::tasks::SyntheticWorkTask;
use flick_runtime::RuntimeMetrics;
use flick_runtime::{
    DispatcherBackend, OutputMode, Platform, PlatformConfig, SchedulingPolicy, ServiceSpec,
    ShardStatus,
};
use flick_services::baselines::{ApacheLikeProxy, MoxiLikeProxy, NginxLikeProxy};
use flick_services::hadoop::hadoop_aggregator;
use flick_services::http::{HttpLoadBalancerFactory, StaticWebServerFactory};
use flick_services::memcached::memcached_proxy;
use flick_workload::backends::{
    start_http_backend, start_memcached_backend, start_sink_backend, start_tcp_http_backend,
};
use flick_workload::hadoop::{run_hadoop_mappers, wait_for_quiescence, HadoopLoadConfig};
use flick_workload::http::{run_http_load, HttpLoadConfig};
use flick_workload::memcached::{run_memcached_load, MemcachedLoadConfig};
use flick_workload::tcp::{run_tcp_http_load, TcpHttpLoadConfig};
use flick_workload::RunStats;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The systems compared in the HTTP experiments (Figure 4 and the web-server
/// results of §6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpSystem {
    /// FLICK on the kernel-stack cost model.
    FlickKernel,
    /// FLICK on the mTCP/DPDK cost model.
    FlickMtcp,
    /// The Apache-like baseline.
    Apache,
    /// The Nginx-like baseline.
    Nginx,
}

impl HttpSystem {
    /// The label used in figure output.
    pub fn label(&self) -> &'static str {
        match self {
            HttpSystem::FlickKernel => "FLICK",
            HttpSystem::FlickMtcp => "FLICK mTCP",
            HttpSystem::Apache => "Apache",
            HttpSystem::Nginx => "Nginx",
        }
    }

    /// All four systems.
    pub fn all() -> [HttpSystem; 4] {
        [
            HttpSystem::FlickKernel,
            HttpSystem::FlickMtcp,
            HttpSystem::Apache,
            HttpSystem::Nginx,
        ]
    }
}

/// Parameters of one HTTP experiment point.
#[derive(Debug, Clone)]
pub struct HttpExperiment {
    /// Concurrent client connections.
    pub concurrency: usize,
    /// Persistent (keep-alive) or one connection per request.
    pub persistent: bool,
    /// Measurement duration.
    pub duration: Duration,
    /// Worker threads / cores for the middlebox.
    pub workers: usize,
    /// Number of backend web servers (0 = static web server mode).
    pub backends: usize,
}

impl Default for HttpExperiment {
    fn default() -> Self {
        HttpExperiment {
            concurrency: 64,
            persistent: true,
            duration: Duration::from_millis(800),
            workers: 4,
            backends: 4,
        }
    }
}

/// Runs one HTTP experiment point (Figure 4 when `backends > 0`, the static
/// web-server experiment when `backends == 0`).
pub fn run_http_experiment(system: HttpSystem, params: &HttpExperiment) -> RunStats {
    let stack = match system {
        HttpSystem::FlickMtcp => StackModel::Mtcp,
        _ => StackModel::Kernel,
    };
    let net = SimNetwork::new(stack);
    let service_port = 8080u16;
    let backend_ports: Vec<u16> = (0..params.backends).map(|i| 8200 + i as u16).collect();
    let _backends: Vec<_> = backend_ports
        .iter()
        .map(|p| start_http_backend(&net, *p, &[b'x'; 137]))
        .collect();

    // Handles are kept alive in these locals until the load run finishes.
    let mut _platform = None;
    let mut _service = None;
    let mut _proxy = None;
    let mut _static_backend = None;
    match system {
        HttpSystem::FlickKernel | HttpSystem::FlickMtcp => {
            let platform = Platform::with_network(
                PlatformConfig {
                    workers: params.workers,
                    stack,
                    ..Default::default()
                },
                Arc::clone(&net),
            );
            let spec = if params.backends == 0 {
                ServiceSpec::new(
                    "web",
                    service_port,
                    StaticWebServerFactory::new(&[b'x'; 137][..]),
                )
            } else {
                ServiceSpec::new("lb", service_port, HttpLoadBalancerFactory::new())
                    .with_backends(backend_ports.clone())
            };
            _service = Some(platform.deploy(spec).expect("deploy FLICK HTTP service"));
            _platform = Some(platform);
        }
        HttpSystem::Apache | HttpSystem::Nginx => {
            // In the static web-server experiment the baselines serve the
            // content themselves; here that is modelled by fronting one
            // local content server with the baseline's processing model.
            let ports = if params.backends == 0 {
                _static_backend = Some(start_http_backend(&net, 8300, &[b'x'; 137]));
                vec![8300]
            } else {
                backend_ports.clone()
            };
            _proxy = Some(if system == HttpSystem::Apache {
                ApacheLikeProxy::start(&net, service_port, ports)
            } else {
                NginxLikeProxy::start(&net, service_port, ports)
            });
        }
    }

    let config = HttpLoadConfig {
        port: service_port,
        concurrency: params.concurrency,
        duration: params.duration,
        persistent: params.persistent,
        timeout: Duration::from_secs(5),
        ..Default::default()
    };
    run_http_load(&net, &config)
}

/// Result of the hostile-goodput experiment: the same FLICK kernel-stack
/// load balancer measured clean and then under a malformed-frame storm.
#[derive(Debug)]
pub struct HostileGoodputResult {
    /// The clean-traffic run.
    pub clean: RunStats,
    /// The run with `hostile_ratio` of the fleet's requests replaced by
    /// poison frames (goodput = its `completed` rate).
    pub hostile: RunStats,
    /// Malformed closes the platform recorded over both runs (the clean
    /// run must contribute zero).
    pub malformed_closes: u64,
}

/// Measures what a malformed-frame storm costs the FLICK load balancer:
/// the same platform and fleet shape runs once clean and once with
/// `hostile_ratio` of requests poisoned (oversized/duplicate/garbled
/// `Content-Length`). The bounded parser must shed each poison frame by
/// closing its connection, so goodput should track the clean rate minus
/// roughly the hostile share — a collapse means rejection has become
/// expensive (or, worse, poison is being answered).
pub fn run_hostile_goodput_experiment(
    params: &HttpExperiment,
    hostile_ratio: f64,
) -> HostileGoodputResult {
    let net = SimNetwork::new(StackModel::Kernel);
    let service_port = 8080u16;
    let backend_ports: Vec<u16> = (0..params.backends.max(1))
        .map(|i| 8200 + i as u16)
        .collect();
    let _backends: Vec<_> = backend_ports
        .iter()
        .map(|p| start_http_backend(&net, *p, &[b'x'; 137]))
        .collect();
    let platform = Platform::with_network(
        PlatformConfig {
            workers: params.workers,
            stack: StackModel::Kernel,
            ..Default::default()
        },
        Arc::clone(&net),
    );
    let _service = platform
        .deploy(
            ServiceSpec::new("lb", service_port, HttpLoadBalancerFactory::new())
                .with_backends(backend_ports),
        )
        .expect("deploy FLICK HTTP service");

    let clean = run_http_load(
        &net,
        &HttpLoadConfig {
            port: service_port,
            concurrency: params.concurrency,
            duration: params.duration,
            persistent: params.persistent,
            timeout: Duration::from_secs(5),
            ..Default::default()
        },
    );
    let closes_after_clean = net.stats().snapshot().malformed_closes;
    let hostile = run_http_load(
        &net,
        &HttpLoadConfig {
            port: service_port,
            concurrency: params.concurrency,
            duration: params.duration,
            persistent: params.persistent,
            timeout: Duration::from_secs(5),
            hostile_ratio,
            ..Default::default()
        },
    );
    let malformed_closes = net.stats().snapshot().malformed_closes;
    debug_assert_eq!(closes_after_clean, 0, "clean run flagged traffic");
    HostileGoodputResult {
        clean,
        hostile,
        malformed_closes,
    }
}

/// The systems compared in the Memcached experiment (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemcachedSystem {
    /// FLICK on the kernel-stack cost model.
    FlickKernel,
    /// FLICK on the mTCP/DPDK cost model.
    FlickMtcp,
    /// The Moxi-like baseline.
    Moxi,
}

impl MemcachedSystem {
    /// The label used in figure output.
    pub fn label(&self) -> &'static str {
        match self {
            MemcachedSystem::FlickKernel => "FLICK",
            MemcachedSystem::FlickMtcp => "FLICK mTCP",
            MemcachedSystem::Moxi => "Moxi",
        }
    }

    /// All three systems.
    pub fn all() -> [MemcachedSystem; 3] {
        [
            MemcachedSystem::FlickKernel,
            MemcachedSystem::FlickMtcp,
            MemcachedSystem::Moxi,
        ]
    }
}

/// Parameters of one Memcached experiment point (Figure 5).
#[derive(Debug, Clone)]
pub struct MemcachedExperiment {
    /// CPU cores (worker threads) given to the proxy.
    pub cores: usize,
    /// Shards of the FLICK platform (1 = the pre-sharding single-reactor
    /// runtime; ignored by the Moxi baseline).
    pub shards: usize,
    /// Concurrent clients (128 in the paper).
    pub clients: usize,
    /// Number of Memcached back-ends (10 in the paper).
    pub backends: usize,
    /// Measurement duration.
    pub duration: Duration,
    /// Dispatcher backend for the FLICK systems (the poll-vs-event
    /// ablation knob; ignored by the Moxi baseline).
    pub dispatcher: DispatcherBackend,
}

impl Default for MemcachedExperiment {
    fn default() -> Self {
        MemcachedExperiment {
            cores: 4,
            shards: 1,
            clients: 32,
            backends: 4,
            duration: Duration::from_millis(800),
            dispatcher: DispatcherBackend::default(),
        }
    }
}

/// Runs one Memcached proxy experiment point.
pub fn run_memcached_experiment(system: MemcachedSystem, params: &MemcachedExperiment) -> RunStats {
    run_memcached_experiment_sharded(system, params).0
}

/// Runs one Memcached proxy experiment point and also returns the
/// platform's per-shard status after the run (empty for the Moxi
/// baseline, which has no shards). The status feeds the fig5 per-shard
/// utilization table.
pub fn run_memcached_experiment_sharded(
    system: MemcachedSystem,
    params: &MemcachedExperiment,
) -> (RunStats, Vec<ShardStatus>) {
    let stack = match system {
        MemcachedSystem::FlickMtcp => StackModel::Mtcp,
        _ => StackModel::Kernel,
    };
    let net = SimNetwork::new(stack);
    let service_port = 11211u16;
    let backend_ports: Vec<u16> = (0..params.backends).map(|i| 11300 + i as u16).collect();
    let _backends: Vec<_> = backend_ports
        .iter()
        .map(|p| start_memcached_backend(&net, *p))
        .collect();

    let mut _platform = None;
    let mut _service = None;
    let mut _proxy = None;
    match system {
        MemcachedSystem::FlickKernel | MemcachedSystem::FlickMtcp => {
            let platform = Platform::with_network(
                PlatformConfig {
                    workers: params.cores,
                    shards: params.shards.max(1),
                    stack,
                    dispatcher: params.dispatcher,
                    ..Default::default()
                },
                Arc::clone(&net),
            );
            _service = Some(
                platform
                    .deploy(
                        ServiceSpec::new("memcached", service_port, memcached_proxy())
                            .with_backends(backend_ports.clone()),
                    )
                    .expect("deploy FLICK memcached proxy"),
            );
            _platform = Some(platform);
        }
        MemcachedSystem::Moxi => {
            _proxy = Some(MoxiLikeProxy::start(
                &net,
                service_port,
                backend_ports.clone(),
            ));
        }
    }

    let config = MemcachedLoadConfig {
        port: service_port,
        clients: params.clients,
        duration: params.duration,
        key_space: 1024,
        getk_fraction: 1.0,
        timeout: Duration::from_secs(5),
        seed: None,
    };
    let stats = run_memcached_load(&net, &config);
    let status = _platform
        .as_ref()
        .map(|p| p.shard_status())
        .unwrap_or_default();
    (stats, status)
}

/// Runs the sharding-on/off ablation: the same Memcached workload against
/// a single-shard platform and against each of `shard_counts`, reporting
/// aggregate throughput plus **per-shard** utilization (each shard's share
/// of task executions) and cross-shard steal counts — the per-shard rows
/// make placement imbalance visible instead of hiding it in an aggregate.
pub fn run_sharding_ablation(
    shard_counts: &[usize],
    duration: Duration,
) -> Vec<crate::report::Row> {
    let mut rows = Vec::new();
    for &shards in shard_counts {
        let params = MemcachedExperiment {
            shards,
            clients: 48,
            duration,
            ..Default::default()
        };
        let (stats, status) =
            run_memcached_experiment_sharded(MemcachedSystem::FlickKernel, &params);
        rows.push(crate::report::Row::new(
            shards,
            "sharded",
            stats.requests_per_sec(),
            "req/s",
        ));
        let total_runs: u64 = status.iter().map(|s| s.load.runs).sum();
        for shard in &status {
            rows.push(crate::report::Row::new(
                shards,
                format!("shard{} util", shard.shard),
                100.0 * shard.load.runs as f64 / (total_runs.max(1)) as f64,
                "%",
            ));
        }
        let stolen: u64 = status.iter().map(|s| s.load.stolen_in).sum();
        rows.push(crate::report::Row::new(
            shards,
            "steals",
            stolen as f64,
            "tasks",
        ));
    }
    rows
}

/// Parameters of one Hadoop aggregation experiment point (Figure 6).
#[derive(Debug, Clone)]
pub struct HadoopExperiment {
    /// CPU cores (worker threads) for the aggregator.
    pub cores: usize,
    /// Word length (8, 12 or 16 characters in the paper).
    pub word_len: usize,
    /// Number of mapper connections (8 in the paper).
    pub mappers: usize,
    /// Bytes each mapper sends.
    pub bytes_per_mapper: usize,
    /// Per-mapper link rate (1 Gbps in the paper); `None` disables the cap.
    pub link_bits_per_sec: Option<u64>,
}

impl Default for HadoopExperiment {
    fn default() -> Self {
        HadoopExperiment {
            cores: 4,
            word_len: 8,
            mappers: 4,
            bytes_per_mapper: 512 * 1024,
            link_bits_per_sec: None,
        }
    }
}

/// Runs one Hadoop aggregation point and returns the end-to-end throughput
/// in megabits per second (mapper bytes over wall-clock time to drain).
pub fn run_hadoop_experiment(params: &HadoopExperiment) -> f64 {
    let net = SimNetwork::new(StackModel::Kernel);
    let reducer_port = 9801u16;
    let service_port = 9800u16;
    let (_reducer, reducer_bytes) = start_sink_backend(&net, reducer_port);
    let platform = Platform::with_network(
        PlatformConfig {
            workers: params.cores,
            stack: StackModel::Kernel,
            ..Default::default()
        },
        Arc::clone(&net),
    );
    let _service = platform
        .deploy(
            ServiceSpec::new("hadoop", service_port, hadoop_aggregator(params.mappers))
                .with_backends(vec![reducer_port]),
        )
        .expect("deploy hadoop aggregator");

    let config = HadoopLoadConfig {
        port: service_port,
        mappers: params.mappers,
        word_len: params.word_len,
        distinct_words: 128,
        bytes_per_mapper: params.bytes_per_mapper,
        link_bits_per_sec: params.link_bits_per_sec,
        seed: None,
    };
    let start = Instant::now();
    let stats = run_hadoop_mappers(&net, &config);
    let _ = wait_for_quiescence(&reducer_bytes, Duration::from_secs(30));
    let elapsed = start.elapsed().as_secs_f64();
    stats.bytes as f64 * 8.0 / 1_000_000.0 / elapsed.max(1e-9)
}

/// Parameters of the dispatcher-backend ablation: a static web service
/// with many connected-but-mostly-idle clients. The poll dispatcher pays
/// O(connections) endpoint scans per `poll_interval` tick regardless of
/// activity; the event dispatcher pays only for the active few — the
/// regime that dominates real middlebox deployments (fig5-style scaling
/// past the paper's core counts).
#[derive(Debug, Clone)]
pub struct IdleConnExperiment {
    /// Total connected clients (idle ones just hold their connection).
    pub connections: usize,
    /// How many of them actively issue requests (closed loop).
    pub active: usize,
    /// Measurement duration.
    pub duration: Duration,
    /// Worker threads for the middlebox.
    pub workers: usize,
    /// Which dispatcher implementation to measure.
    pub backend: DispatcherBackend,
}

impl Default for IdleConnExperiment {
    fn default() -> Self {
        IdleConnExperiment {
            connections: 256,
            active: 8,
            duration: Duration::from_millis(400),
            workers: 4,
            backend: DispatcherBackend::default(),
        }
    }
}

/// The outcome of one dispatcher-backend ablation point.
#[derive(Debug, Clone)]
pub struct IdleConnResult {
    /// Request statistics of the active clients.
    pub stats: RunStats,
    /// `Endpoint::readable` scans the middlebox issued during the run
    /// (zero for the event backend, O(connections / poll_interval) for the
    /// poll backend).
    pub readable_polls: u64,
}

/// Runs one dispatcher-backend ablation point: `connections` clients
/// connect to a FLICK static web server, the first `active` of them issue
/// closed-loop requests, the rest sit idle for the whole run.
pub fn run_idle_connections_experiment(params: &IdleConnExperiment) -> IdleConnResult {
    let net = SimNetwork::new(StackModel::Kernel);
    let service_port = 8080u16;
    let platform = Platform::with_network(
        PlatformConfig {
            workers: params.workers,
            stack: StackModel::Kernel,
            dispatcher: params.backend,
            ..Default::default()
        },
        Arc::clone(&net),
    );
    let _service = platform
        .deploy(ServiceSpec::new(
            "idle-web",
            service_port,
            StaticWebServerFactory::new(&[b'x'; 137][..]),
        ))
        .expect("deploy static web service");

    // Establish the idle population first so every request of the active
    // clients is dispatched while the watcher set is at full size.
    let idle: Vec<_> = (params.active..params.connections)
        .map(|_| net.connect(service_port).expect("idle client connects"))
        .collect();
    // Give the dispatcher a moment to instantiate all idle graphs.
    std::thread::sleep(Duration::from_millis(50));
    let polls_before = net.stats().snapshot().readable_polls;

    let config = HttpLoadConfig {
        port: service_port,
        concurrency: params.active,
        duration: params.duration,
        persistent: true,
        timeout: Duration::from_secs(5),
        ..Default::default()
    };
    let stats = run_http_load(&net, &config);
    let polls_after = net.stats().snapshot().readable_polls;
    for conn in &idle {
        conn.close();
    }
    IdleConnResult {
        stats,
        readable_polls: polls_after.saturating_sub(polls_before),
    }
}

/// Runs the poll-vs-event dispatcher ablation at the given connection
/// counts and returns figure rows (req/s plus endpoint scans per second),
/// ready for [`crate::print_table`] or the CI baseline file.
pub fn run_dispatcher_backend_ablation(
    connection_counts: &[usize],
    duration: Duration,
) -> Vec<crate::report::Row> {
    let mut rows = Vec::new();
    for &connections in connection_counts {
        for backend in DispatcherBackend::all() {
            let params = IdleConnExperiment {
                connections,
                backend,
                duration,
                ..Default::default()
            };
            let result = run_idle_connections_experiment(&params);
            rows.push(crate::report::Row::new(
                connections,
                backend.label(),
                result.stats.requests_per_sec(),
                "req/s",
            ));
            rows.push(crate::report::Row::new(
                connections,
                format!("{} scans", backend.label()),
                result.readable_polls as f64 / duration.as_secs_f64(),
                "polls/s",
            ));
        }
    }
    rows
}

/// Parameters of the e2e loopback TCP experiment: the same static web
/// service deployed twice on one platform — once on a real OS socket
/// (`deploy_tcp`, driven by the blocking loopback client pool) and once on
/// the simulated substrate with the calibrated kernel cost model (driven
/// by the in-process fleet). The pair yields a machine-independent
/// tcp-vs-sim ratio: real kernel sockets against the modelled kernel
/// stack, same dispatcher, same graphs, same worker budget.
#[derive(Debug, Clone)]
pub struct TcpLoopbackExperiment {
    /// Concurrent client connections per run.
    pub concurrency: usize,
    /// Measurement duration per run.
    pub duration: Duration,
    /// Worker threads for the middlebox.
    pub workers: usize,
    /// Shards (per-shard reactors + `SO_REUSEPORT` accept sockets).
    pub shards: usize,
}

impl Default for TcpLoopbackExperiment {
    fn default() -> Self {
        TcpLoopbackExperiment {
            concurrency: 16,
            duration: Duration::from_millis(400),
            workers: 4,
            shards: 1,
        }
    }
}

/// The outcome of one e2e loopback experiment.
#[derive(Debug, Clone)]
pub struct TcpLoopbackResult {
    /// Stats of the real-socket run.
    pub tcp: RunStats,
    /// Stats of the simulated-substrate run (kernel cost model).
    pub sim: RunStats,
}

/// Runs the e2e loopback TCP point: request → kernel socket → event
/// dispatcher → parse → task graph → reply, plus the simulated twin for
/// the within-run ratio gate in `bench_guard`.
pub fn run_tcp_loopback_experiment(params: &TcpLoopbackExperiment) -> TcpLoopbackResult {
    let net = SimNetwork::new(StackModel::Kernel);
    let platform = Platform::with_network(
        PlatformConfig {
            workers: params.workers,
            shards: params.shards,
            stack: StackModel::Kernel,
            ..Default::default()
        },
        Arc::clone(&net),
    );
    let body = &[b'x'; 137][..];
    let tcp_service = platform
        .deploy_tcp(
            ServiceSpec::new("tcp-web", 0, StaticWebServerFactory::new(body)),
            "127.0.0.1:0",
        )
        .expect("deploy loopback TCP service");
    let _sim_service = platform
        .deploy(ServiceSpec::new(
            "sim-web",
            8080,
            StaticWebServerFactory::new(body),
        ))
        .expect("deploy simulated twin");

    let tcp = run_tcp_http_load(
        &format!("127.0.0.1:{}", tcp_service.port()),
        &TcpHttpLoadConfig {
            concurrency: params.concurrency,
            duration: params.duration,
            persistent: true,
            timeout: Duration::from_secs(5),
        },
    );
    let sim = run_http_load(
        &net,
        &HttpLoadConfig {
            port: 8080,
            concurrency: params.concurrency,
            duration: params.duration,
            persistent: true,
            timeout: Duration::from_secs(5),
            ..Default::default()
        },
    );
    TcpLoopbackResult { tcp, sim }
}

/// One point of the kernel-path sharding curve.
#[derive(Debug, Clone)]
pub struct TcpShardingPoint {
    /// Shard count of this run (reactors, accept sockets, dispatchers).
    pub shards: usize,
    /// Closed-loop stats of the real-socket run.
    pub tcp: RunStats,
}

/// Runs the kernel-path sharding curve (the fig5 companion for the OS
/// transport): the same loopback web service at 1, 2, 4, … shards up to
/// `max_shards`, each shard owning its own reactor thread and
/// `SO_REUSEPORT` accept socket. On a single-core host the interesting
/// gate is the *ratio*: sharding the kernel path must not cost throughput
/// even when it cannot win any.
pub fn run_tcp_sharding_curve(
    base: &TcpLoopbackExperiment,
    max_shards: usize,
) -> Vec<TcpShardingPoint> {
    let mut points = Vec::new();
    let mut shards = 1;
    while shards <= max_shards.max(1) {
        let params = TcpLoopbackExperiment {
            shards,
            ..base.clone()
        };
        let result = run_tcp_loopback_experiment(&params);
        points.push(TcpShardingPoint {
            shards,
            tcp: result.tcp,
        });
        shards *= 2;
    }
    points
}

/// Reads this process's open-file limit (soft) from `/proc/self/limits`,
/// falling back to a conservative 1024 when the file is unreadable (e.g.
/// non-Linux hosts).
pub fn max_open_files() -> u64 {
    let Ok(limits) = std::fs::read_to_string("/proc/self/limits") else {
        return 1024;
    };
    limits
        .lines()
        .find(|line| line.starts_with("Max open files"))
        .and_then(|line| line.split_whitespace().nth(3)?.parse().ok())
        .unwrap_or(1024)
}

/// Parameters of the c10k idle+active point: thousands of idle kernel
/// connections pinned open against the event dispatcher while a small
/// closed loop measures throughput.
#[derive(Debug, Clone)]
pub struct TcpC10kExperiment {
    /// Idle connections requested (clamped to the fd budget, see
    /// [`run_tcp_c10k_experiment`]).
    pub idle_connections: usize,
    /// Active closed-loop clients.
    pub concurrency: usize,
    /// Measurement duration of the active loop.
    pub duration: Duration,
    /// Worker threads for the middlebox.
    pub workers: usize,
    /// Shard count.
    pub shards: usize,
}

impl Default for TcpC10kExperiment {
    fn default() -> Self {
        TcpC10kExperiment {
            idle_connections: 10_000,
            concurrency: 8,
            duration: Duration::from_millis(400),
            workers: 2,
            shards: 1,
        }
    }
}

/// The outcome of the c10k point.
#[derive(Debug, Clone)]
pub struct TcpC10kResult {
    /// Idle connections actually requested after fd clamping.
    pub idle_requested: usize,
    /// Idle connections established.
    pub idle_connected: usize,
    /// Idle connections still alive after the active run.
    pub idle_survivors: usize,
    /// The active closed loop's stats.
    pub active: RunStats,
    /// Zero-copy law: ingest copies charged on the kernel path.
    pub ingest_copies: u64,
    /// Writable-interest law: busy retries charged by output tasks.
    pub output_busy_retries: u64,
}

/// Runs the c10k idle+active point over real kernel sockets. Each idle
/// connection costs two fds (client + accepted side) in this process, so
/// the requested count is clamped to `(fd_limit - 500) / 2` — the slack
/// covers the active loop, the reactor's own fds and everything else the
/// process holds open.
pub fn run_tcp_c10k_experiment(params: &TcpC10kExperiment) -> TcpC10kResult {
    let fd_budget = (max_open_files().saturating_sub(500) / 2) as usize;
    let idle_requested = params.idle_connections.min(fd_budget.max(1));
    let platform = Platform::new(PlatformConfig {
        workers: params.workers,
        shards: params.shards,
        stack: StackModel::Kernel,
        ..Default::default()
    });
    let body = &[b'x'; 137][..];
    let service = platform
        .deploy_tcp(
            ServiceSpec::new("c10k-web", 0, StaticWebServerFactory::new(body)),
            "127.0.0.1:0",
        )
        .expect("deploy c10k TCP service");
    let stats = flick_workload::tcp::run_tcp_idle_active_load(
        &format!("127.0.0.1:{}", service.port()),
        &flick_workload::tcp::TcpIdleActiveConfig {
            idle_connections: idle_requested,
            active: TcpHttpLoadConfig {
                concurrency: params.concurrency,
                duration: params.duration,
                persistent: true,
                timeout: Duration::from_secs(10),
            },
        },
    );
    let tcp_stats = platform.tcp_stack().stats().snapshot();
    let runtime = platform.metrics().snapshot();
    TcpC10kResult {
        idle_requested,
        idle_connected: stats.idle_connected,
        idle_survivors: stats.idle_survivors,
        active: stats.active,
        ingest_copies: tcp_stats.ingest_copies,
        output_busy_retries: runtime.output_busy_retries,
    }
}

/// Parameters of the all-TCP load-balancer experiment: kernel clients →
/// TCP-fronted FLICK load balancer → kernel-socket back-ends. No byte of a
/// request or response ever rides the simulated fabric; the simulated twin
/// (same LB graph, simulated clients and back-ends on the kernel cost
/// model) runs on the same platform for a within-run ratio gate.
#[derive(Debug, Clone)]
pub struct TcpLbExperiment {
    /// Concurrent client connections per run.
    pub concurrency: usize,
    /// Measurement duration per run.
    pub duration: Duration,
    /// Worker threads for the middlebox.
    pub workers: usize,
    /// Number of back-end web servers.
    pub backends: usize,
}

impl Default for TcpLbExperiment {
    fn default() -> Self {
        TcpLbExperiment {
            concurrency: 16,
            duration: Duration::from_millis(400),
            workers: 4,
            backends: 4,
        }
    }
}

/// The outcome of one all-TCP load-balancer experiment.
#[derive(Debug, Clone)]
pub struct TcpLbResult {
    /// Stats of the all-TCP run (kernel client → LB → kernel backend).
    pub tcp: RunStats,
    /// Stats of the simulated twin.
    pub sim: RunStats,
    /// Requests each TCP back-end served (hash distribution sanity).
    pub backend_requests: Vec<u64>,
}

/// Runs the all-TCP load-balancer point: every hop of
/// `client → LB → backend` crosses a real kernel socket — the LB's front
/// door is `Platform::deploy_tcp`, its [`flick_runtime::BackendPool`]
/// holds TCP targets — plus the simulated twin for the within-run ratio
/// gate in `bench_guard`.
pub fn run_tcp_lb_experiment(params: &TcpLbExperiment) -> TcpLbResult {
    let net = SimNetwork::new(StackModel::Kernel);
    let platform = Platform::with_network(
        PlatformConfig {
            workers: params.workers,
            stack: StackModel::Kernel,
            ..Default::default()
        },
        Arc::clone(&net),
    );
    let body = &[b'x'; 137][..];

    // The all-TCP leg.
    let tcp_backends: Vec<_> = (0..params.backends)
        .map(|_| start_tcp_http_backend(body))
        .collect();
    let lb = platform
        .deploy_tcp(
            ServiceSpec::new("tcp-lb", 0, HttpLoadBalancerFactory::new())
                .with_tcp_backends(tcp_backends.iter().map(|b| b.addr().to_string()).collect()),
            "127.0.0.1:0",
        )
        .expect("deploy all-TCP load balancer");
    let tcp = run_tcp_http_load(
        &format!("127.0.0.1:{}", lb.port()),
        &TcpHttpLoadConfig {
            concurrency: params.concurrency,
            duration: params.duration,
            persistent: true,
            timeout: Duration::from_secs(5),
        },
    );
    let backend_requests = tcp_backends.iter().map(|b| b.requests_served()).collect();

    // The simulated twin: same graph, kernel cost model end to end.
    let backend_ports: Vec<u16> = (0..params.backends).map(|i| 8200 + i as u16).collect();
    let _sim_backends: Vec<_> = backend_ports
        .iter()
        .map(|p| start_http_backend(&net, *p, body))
        .collect();
    let _sim_lb = platform
        .deploy(
            ServiceSpec::new("sim-lb", 8080, HttpLoadBalancerFactory::new())
                .with_backends(backend_ports),
        )
        .expect("deploy simulated twin");
    let sim = run_http_load(
        &net,
        &HttpLoadConfig {
            port: 8080,
            concurrency: params.concurrency,
            duration: params.duration,
            persistent: true,
            timeout: Duration::from_secs(5),
            ..Default::default()
        },
    );
    TcpLbResult {
        tcp,
        sim,
        backend_requests,
    }
}

/// Parameters of the writable-interest (output-mode) ablation: a static
/// web service with large responses, a population of *stalled* clients
/// that send pipelined requests over tiny pipes and never read a byte
/// back, and a set of active closed-loop clients whose throughput is
/// measured. Under [`OutputMode::BusyRetry`] every stalled connection's
/// output task spins runnable against the full pipe and bleeds worker
/// time; under the default [`OutputMode::Wakeup`] they park on writable
/// readiness and cost nothing.
#[derive(Debug, Clone)]
pub struct OutputModeExperiment {
    /// Connections whose clients never read (their output tasks block).
    pub stalled: usize,
    /// Active closed-loop clients (the measured population).
    pub active: usize,
    /// Measurement duration.
    pub duration: Duration,
    /// Worker threads for the middlebox.
    pub workers: usize,
    /// Which output mode to measure.
    pub mode: OutputMode,
}

impl Default for OutputModeExperiment {
    fn default() -> Self {
        OutputModeExperiment {
            stalled: 8,
            active: 4,
            duration: Duration::from_millis(400),
            workers: 4,
            mode: OutputMode::default(),
        }
    }
}

/// The outcome of one output-mode ablation point.
#[derive(Debug, Clone)]
pub struct OutputModeResult {
    /// Request statistics of the active clients.
    pub stats: RunStats,
    /// Busy retries output tasks performed during the run (0 for the
    /// wakeup mode: stalled peers park their writers instead of spinning).
    pub busy_retries: u64,
}

/// Runs one output-mode ablation point.
pub fn run_output_mode_experiment(params: &OutputModeExperiment) -> OutputModeResult {
    let net = SimNetwork::new(StackModel::Kernel);
    let service_port = 8080u16;
    let platform = Platform::with_network(
        PlatformConfig {
            workers: params.workers,
            stack: StackModel::Kernel,
            output_mode: params.mode,
            ..Default::default()
        },
        Arc::clone(&net),
    );
    // 16 KB responses against 4 KB pipes: a stalled client's output task
    // hits WouldBlock with most of the response still buffered.
    let _service = platform
        .deploy(ServiceSpec::new(
            "stall-web",
            service_port,
            StaticWebServerFactory::new(vec![b'x'; 16 * 1024]),
        ))
        .expect("deploy static web service");

    let stalled: Vec<_> = (0..params.stalled)
        .map(|_| {
            let conn = net
                .connect_with(
                    service_port,
                    &ConnectOptions {
                        capacity: Some(4 * 1024),
                        ..Default::default()
                    },
                )
                .expect("stalled client connects");
            for _ in 0..4 {
                conn.write_all(b"GET /stall HTTP/1.1\r\nHost: s\r\n\r\n")
                    .expect("stalled request");
            }
            conn
        })
        .collect();
    // Let every stalled graph instantiate and its output task hit the wall
    // before measuring.
    std::thread::sleep(Duration::from_millis(50));
    let retries_before = platform.metrics().snapshot().output_busy_retries;

    let stats = run_http_load(
        &net,
        &HttpLoadConfig {
            port: service_port,
            concurrency: params.active,
            duration: params.duration,
            persistent: true,
            timeout: Duration::from_secs(5),
            ..Default::default()
        },
    );
    let busy_retries = platform
        .metrics()
        .snapshot()
        .output_busy_retries
        .saturating_sub(retries_before);
    for conn in &stalled {
        conn.close();
    }
    OutputModeResult {
        stats,
        busy_retries,
    }
}

/// Runs the busy-vs-wakeup output ablation and returns figure rows
/// (req/s of the active clients plus the busy-retry counter), ready for
/// [`crate::print_table`] or the CI baseline file.
pub fn run_output_mode_ablation(duration: Duration) -> Vec<crate::report::Row> {
    let mut rows = Vec::new();
    for mode in OutputMode::all() {
        let params = OutputModeExperiment {
            duration,
            mode,
            ..Default::default()
        };
        let result = run_output_mode_experiment(&params);
        rows.push(crate::report::Row::new(
            params.stalled,
            format!("output {}", mode.label()),
            result.stats.requests_per_sec(),
            "req/s",
        ));
        rows.push(crate::report::Row::new(
            params.stalled,
            format!("output {} retries", mode.label()),
            result.busy_retries as f64,
            "retries",
        ));
    }
    rows
}

/// The result of the §6.4 resource-sharing micro-benchmark (Figure 7).
#[derive(Debug, Clone, Copy)]
pub struct SharingResult {
    /// Wall-clock time until the last *light* task completed.
    pub light_completion: Duration,
    /// Wall-clock time until the last *heavy* task completed.
    pub heavy_completion: Duration,
}

/// Parameters of the resource-sharing micro-benchmark.
#[derive(Debug, Clone)]
pub struct SharingExperiment {
    /// Tasks per class (100 + 100 in the paper).
    pub tasks_per_class: usize,
    /// Data items per task.
    pub items_per_task: usize,
    /// Worker threads.
    pub workers: usize,
}

impl Default for SharingExperiment {
    fn default() -> Self {
        SharingExperiment {
            tasks_per_class: 100,
            items_per_task: 400,
            workers: 2,
        }
    }
}

/// Runs the scheduling-policy micro-benchmark: 50% light tasks (1 KB items)
/// and 50% heavy tasks (16 KB items), returning per-class completion times.
pub fn run_sharing_experiment(
    policy: SchedulingPolicy,
    params: &SharingExperiment,
) -> SharingResult {
    let metrics = RuntimeMetrics::new_shared();
    let scheduler = Scheduler::start(params.workers, policy, metrics);
    let start = Instant::now();
    let light_done: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
    let heavy_done: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
    let mut next_id = 1u64;
    // The heavy class is registered (and therefore queued) first: under the
    // non-cooperative policy completion order then follows scheduling order,
    // which is the effect Figure 7 illustrates.
    for class in 0..2 {
        let (item_size, sink) = if class == 1 {
            (1024, &light_done)
        } else {
            (16 * 1024, &heavy_done)
        };
        for i in 0..params.tasks_per_class {
            let sink = Arc::clone(sink);
            let id = TaskId(next_id);
            next_id += 1;
            scheduler.register(
                id,
                Box::new(SyntheticWorkTask::new(
                    format!("{}-{i}", if class == 1 { "light" } else { "heavy" }),
                    params.items_per_task,
                    item_size,
                    Some(Box::new(move || {
                        sink.lock().push(start.elapsed());
                    })),
                )),
            );
            scheduler.schedule(id);
        }
    }
    assert!(
        scheduler.wait_idle(Duration::from_secs(120)),
        "micro-benchmark stalled"
    );
    let max_of = |v: &Arc<Mutex<Vec<Duration>>>| v.lock().iter().copied().max().unwrap_or_default();
    SharingResult {
        light_completion: max_of(&light_done),
        heavy_completion: max_of(&heavy_done),
    }
}

/// The FLICK program measured by the execution-mode dispatch ablation: a
/// weighted router whose per-message work — a field read, a hash, a
/// 16-step accumulation loop, a modulo route and a send — is typical of
/// compiled service logic and large enough for the engines' dispatch
/// costs to dominate over the call harness.
const DISPATCH_BENCH_SOURCE: &str = "\
type cmd: record
  key : string

proc P: (cmd/cmd client, [cmd/cmd] backends)
  client => target_backend(backends)

fun target_backend: ([-/cmd] backends, req: cmd) -> ()
  let target = hash(req.key) mod len(backends)
  req => backends[target]

fun dispatch: ([-/cmd] outs, req: cmd, weights: [integer]) -> ()
  let h = hash(req.key)
  let acc = 0
  for w in weights:
    acc := ((acc * 31) + w + h) mod 65521
  req => outs[acc mod len(outs)]
";

/// Parameters of the interp-vs-VM dispatch ablation.
#[derive(Debug, Clone)]
pub struct ExecModeDispatchExperiment {
    /// Messages dispatched per engine per pass.
    pub messages: usize,
    /// Entries in the per-message accumulation loop.
    pub weights: usize,
    /// Output channels routed over.
    pub channels: usize,
}

impl Default for ExecModeDispatchExperiment {
    fn default() -> Self {
        ExecModeDispatchExperiment {
            messages: 20_000,
            weights: 48,
            channels: 8,
        }
    }
}

/// Result of [`run_exec_mode_dispatch_experiment`]: per-message dispatch
/// throughput of the tree-walking interpreter and of the bytecode VM over
/// the same lowered program.
#[derive(Debug, Clone)]
pub struct ExecModeDispatchResult {
    /// Messages per second through the interpreter.
    pub interp_msgs_per_sec: f64,
    /// Messages per second through the VM.
    pub vm_msgs_per_sec: f64,
}

/// Measures per-message dispatch cost of the two execution engines on the
/// same lowered FLICK program (`DISPATCH_BENCH_SOURCE`'s `dispatch`
/// function). Both engines see identical arguments per message and their
/// routed sends are checked against each other, so the comparison cannot
/// silently drift semantically. The unit is msg/s: the within-run
/// interp/VM ratio is the guarded quantity (`bench_guard` gates it above
/// 1.0); absolute rates are recorded for context only.
pub fn run_exec_mode_dispatch_experiment(
    params: &ExecModeDispatchExperiment,
) -> ExecModeDispatchResult {
    use flick_compiler::interp::{CollectSink, Interpreter, RtVal};
    use flick_compiler::vm::Vm;
    use flick_runtime::Value;

    let service = flick_compiler::compile_source(
        DISPATCH_BENCH_SOURCE,
        "P",
        &flick_compiler::CompileOptions::default(),
    )
    .expect("bench source compiles");
    let program = Arc::clone(service.program());
    let compiled = Arc::clone(service.compiled());
    let index = program
        .functions
        .iter()
        .position(|f| f.name == "dispatch")
        .expect("dispatch function present");

    let weights: Vec<Value> = (0..params.weights as i64).map(Value::Int).collect();
    let keys: Vec<String> = (0..64).map(|i| format!("key-{i:04}")).collect();
    let args_for = |message: usize| {
        let mut msg = flick_grammar::Message::new("cmd");
        msg.set(
            "key",
            flick_grammar::MsgValue::Str(keys[message % keys.len()].clone()),
        );
        vec![
            RtVal::ChannelArray((0..params.channels).collect()),
            RtVal::Val(Value::Msg(msg)),
            RtVal::Val(Value::List(weights.clone())),
        ]
    };

    // Interpreter pass.
    let interp = Interpreter::new(&program);
    let mut interp_sink = CollectSink::default();
    let interp_start = Instant::now();
    for message in 0..params.messages {
        interp
            .call_function(index, args_for(message), &mut interp_sink)
            .expect("interp dispatch");
    }
    let interp_elapsed = interp_start.elapsed();

    // VM pass over the same message stream.
    let mut cache = compiled.field_offsets.clone();
    let mut vm = Vm::new(&compiled, &mut cache);
    let mut vm_sink = CollectSink::default();
    let vm_start = Instant::now();
    for message in 0..params.messages {
        vm.call_function(index, args_for(message), &mut vm_sink)
            .expect("vm dispatch");
    }
    let vm_elapsed = vm_start.elapsed();

    // Semantic tripwire: both engines must have routed every message to
    // the same channel sequence.
    assert_eq!(
        interp_sink.sent.len(),
        vm_sink.sent.len(),
        "engines dispatched different send counts"
    );
    for (a, b) in interp_sink.sent.iter().zip(&vm_sink.sent) {
        assert_eq!(a.0, b.0, "engines routed a message differently");
    }

    ExecModeDispatchResult {
        interp_msgs_per_sec: params.messages as f64 / interp_elapsed.as_secs_f64().max(1e-9),
        vm_msgs_per_sec: params.messages as f64 / vm_elapsed.as_secs_f64().max(1e-9),
    }
}

/// Parameters of the end-to-end compiled-LB point: the FLICK-compiled
/// HTTP load balancer (not the hand-written factory) deployed over real
/// kernel sockets in VM mode, measured with the closed-loop TCP driver.
#[derive(Debug, Clone)]
pub struct FlickVmLbExperiment {
    /// Concurrent client connections.
    pub concurrency: usize,
    /// Measurement duration.
    pub duration: Duration,
    /// Worker threads for the middlebox.
    pub workers: usize,
    /// Number of back-end web servers.
    pub backends: usize,
}

impl Default for FlickVmLbExperiment {
    fn default() -> Self {
        FlickVmLbExperiment {
            concurrency: 16,
            duration: Duration::from_millis(400),
            workers: 4,
            backends: 4,
        }
    }
}

/// The outcome of the compiled-LB-in-VM-mode experiment.
#[derive(Debug, Clone)]
pub struct FlickVmLbResult {
    /// Stats of the all-TCP run through the compiled balancer.
    pub stats: RunStats,
    /// Requests each TCP back-end served (hash distribution sanity).
    pub backend_requests: Vec<u64>,
}

/// Runs the end-to-end compiled-LB point: `client → FLICK-compiled LB →
/// backend`, every hop over a real kernel socket, with the balancer's
/// routing logic executing on the bytecode VM (the default
/// [`flick_runtime::ExecMode`]). The same shape as
/// [`run_tcp_lb_experiment`]'s TCP leg, but through the whole compiler
/// pipeline instead of the hand-written factory.
pub fn run_flick_vm_lb_experiment(params: &FlickVmLbExperiment) -> FlickVmLbResult {
    let platform = Platform::new(PlatformConfig {
        workers: params.workers,
        stack: StackModel::Kernel,
        ..Default::default()
    });
    let body = &[b'x'; 137][..];
    let service = flick_compiler::compile_source(
        flick_services::http::HTTP_LB_FLICK_SOURCE,
        "HttpBalancer",
        &flick_compiler::CompileOptions::default(),
    )
    .expect("bundled FLICK balancer compiles");
    let tcp_backends: Vec<_> = (0..params.backends)
        .map(|_| start_tcp_http_backend(body))
        .collect();
    let lb = platform
        .deploy_tcp(
            ServiceSpec::new("flick-vm-lb", 0, service)
                .with_tcp_backends(tcp_backends.iter().map(|b| b.addr().to_string()).collect())
                .with_exec_mode(flick_runtime::ExecMode::Vm),
            "127.0.0.1:0",
        )
        .expect("deploy compiled balancer over TCP");
    let stats = run_tcp_http_load(
        &format!("127.0.0.1:{}", lb.port()),
        &TcpHttpLoadConfig {
            concurrency: params.concurrency,
            duration: params.duration,
            persistent: true,
            timeout: Duration::from_secs(5),
        },
    );
    let backend_requests = tcp_backends.iter().map(|b| b.requests_served()).collect();
    FlickVmLbResult {
        stats,
        backend_requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_experiment_runs_all_policies() {
        let params = SharingExperiment {
            tasks_per_class: 8,
            items_per_task: 50,
            workers: 2,
        };
        for policy in [
            SchedulingPolicy::Cooperative {
                timeslice: Duration::from_micros(50),
            },
            SchedulingPolicy::NonCooperative,
            SchedulingPolicy::RoundRobin,
        ] {
            let result = run_sharing_experiment(policy, &params);
            assert!(result.light_completion > Duration::ZERO);
            assert!(result.heavy_completion >= result.light_completion / 50);
        }
    }

    #[test]
    fn http_experiment_smoke() {
        let params = HttpExperiment {
            concurrency: 4,
            persistent: true,
            duration: Duration::from_millis(150),
            workers: 2,
            backends: 2,
        };
        let stats = run_http_experiment(HttpSystem::FlickKernel, &params);
        assert!(stats.completed > 0, "{stats:?}");
    }

    #[test]
    fn memcached_experiment_smoke() {
        let params = MemcachedExperiment {
            cores: 2,
            clients: 4,
            backends: 2,
            duration: Duration::from_millis(150),
            ..Default::default()
        };
        let stats = run_memcached_experiment(MemcachedSystem::FlickKernel, &params);
        assert!(stats.completed > 0, "{stats:?}");
    }

    #[test]
    fn idle_connections_experiment_smoke() {
        for backend in DispatcherBackend::all() {
            let params = IdleConnExperiment {
                connections: 16,
                active: 2,
                duration: Duration::from_millis(150),
                workers: 2,
                backend,
            };
            let result = run_idle_connections_experiment(&params);
            assert!(
                result.stats.completed > 0,
                "{backend:?}: {:?}",
                result.stats
            );
        }
    }

    #[test]
    fn event_backend_never_scans_endpoints() {
        let params = IdleConnExperiment {
            connections: 16,
            active: 2,
            duration: Duration::from_millis(150),
            workers: 2,
            backend: DispatcherBackend::Event,
        };
        let result = run_idle_connections_experiment(&params);
        assert_eq!(
            result.readable_polls, 0,
            "event dispatcher must not poll endpoints"
        );
    }

    #[test]
    fn tcp_loopback_experiment_smoke() {
        let params = TcpLoopbackExperiment {
            concurrency: 2,
            duration: Duration::from_millis(150),
            workers: 2,
            shards: 1,
        };
        let result = run_tcp_loopback_experiment(&params);
        assert!(result.tcp.completed > 0, "tcp: {:?}", result.tcp);
        assert!(result.sim.completed > 0, "sim: {:?}", result.sim);
    }

    /// Kernel accept sharding end to end at a reduced scale: two shards,
    /// two REUSEPORT accept sockets, requests served through both
    /// reactors' event paths.
    #[test]
    fn tcp_loopback_sharded_smoke() {
        let params = TcpLoopbackExperiment {
            concurrency: 4,
            duration: Duration::from_millis(150),
            workers: 2,
            shards: 2,
        };
        let result = run_tcp_loopback_experiment(&params);
        assert!(result.tcp.completed > 0, "tcp: {:?}", result.tcp);
    }

    /// The c10k runner at a reduced scale: the idle mass must connect,
    /// survive, and leave the zero-copy laws intact.
    #[test]
    fn tcp_c10k_experiment_smoke() {
        let params = TcpC10kExperiment {
            idle_connections: 64,
            concurrency: 2,
            duration: Duration::from_millis(150),
            workers: 2,
            shards: 1,
        };
        let result = run_tcp_c10k_experiment(&params);
        assert_eq!(result.idle_connected, 64, "{result:?}");
        assert_eq!(result.idle_survivors, 64, "{result:?}");
        assert!(result.active.completed > 0, "{result:?}");
        assert_eq!(result.ingest_copies, 0, "{result:?}");
        assert_eq!(result.output_busy_retries, 0, "{result:?}");
    }

    #[test]
    fn fd_limit_parses_on_linux() {
        let limit = max_open_files();
        assert!(limit >= 256, "implausible fd limit {limit}");
    }

    #[test]
    fn tcp_lb_experiment_smoke() {
        let params = TcpLbExperiment {
            concurrency: 2,
            duration: Duration::from_millis(150),
            workers: 2,
            backends: 2,
        };
        let result = run_tcp_lb_experiment(&params);
        assert!(result.tcp.completed > 0, "tcp: {:?}", result.tcp);
        assert!(result.sim.completed > 0, "sim: {:?}", result.sim);
        assert!(
            result.backend_requests.iter().sum::<u64>() > 0,
            "TCP back-ends never saw a request: {:?}",
            result.backend_requests
        );
    }

    #[test]
    fn output_mode_experiment_smoke() {
        for mode in OutputMode::all() {
            let params = OutputModeExperiment {
                stalled: 2,
                active: 2,
                duration: Duration::from_millis(150),
                workers: 2,
                mode,
            };
            let result = run_output_mode_experiment(&params);
            assert!(result.stats.completed > 0, "{mode:?}: {:?}", result.stats);
            if mode == OutputMode::Wakeup {
                assert_eq!(
                    result.busy_retries, 0,
                    "wakeup mode must not busy-retry against stalled peers"
                );
            }
        }
    }

    #[test]
    fn exec_mode_dispatch_experiment_smoke() {
        let result = run_exec_mode_dispatch_experiment(&ExecModeDispatchExperiment {
            messages: 500,
            weights: 8,
            channels: 4,
        });
        assert!(result.interp_msgs_per_sec > 0.0, "{result:?}");
        assert!(result.vm_msgs_per_sec > 0.0, "{result:?}");
    }

    #[test]
    fn flick_vm_lb_experiment_smoke() {
        let result = run_flick_vm_lb_experiment(&FlickVmLbExperiment {
            concurrency: 2,
            duration: Duration::from_millis(150),
            workers: 2,
            backends: 2,
        });
        assert!(result.stats.completed > 0, "{:?}", result.stats);
        assert!(
            result.backend_requests.iter().sum::<u64>() > 0,
            "compiled LB never reached a TCP back-end: {:?}",
            result.backend_requests
        );
    }

    #[test]
    fn hadoop_experiment_smoke() {
        let params = HadoopExperiment {
            cores: 2,
            word_len: 8,
            mappers: 2,
            bytes_per_mapper: 64 * 1024,
            link_bits_per_sec: None,
        };
        let mbps = run_hadoop_experiment(&params);
        assert!(mbps > 0.0);
    }
}
