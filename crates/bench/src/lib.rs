//! The FLICK benchmark harness.
//!
//! One experiment runner per figure of the paper's evaluation (§6). The
//! `fig4`, `fig5`, `fig6`, `fig7` and `fig_webserver` binaries call these
//! runners at a configurable scale and print the same series the paper
//! reports, next to the paper's reference values; the Criterion benches
//! under `benches/` wrap reduced versions of the same runners.
//!
//! All experiments run on the simulated substrate: absolute numbers are not
//! comparable with the paper's 16-core 10 GbE testbed, but the *shape*
//! (which system wins, how throughput scales with cores or concurrency,
//! where the scheduling policies differ) is, and `EXPERIMENTS.md` records
//! both.

pub mod experiments;
pub mod report;

pub use experiments::*;
pub use report::{print_table, Row};
