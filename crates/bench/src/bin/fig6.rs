//! Regenerates Figure 6: Hadoop in-network aggregation throughput versus the
//! number of CPU cores, for wordcount datasets of 8-, 12- and 16-character
//! words.
//!
//! Paper shape: throughput scales with cores up to the aggregate capacity of
//! the 8 mapper links (~7.5 Gbps on the testbed), and longer words yield
//! higher throughput because they comprise fewer key/value pairs.

use flick_bench::{print_table, run_hadoop_experiment, HadoopExperiment, Row};

fn main() {
    let cores = [1usize, 2, 4, 8];
    let word_lens = [8usize, 12, 16];
    let mut rows = Vec::new();
    for &c in &cores {
        for &w in &word_lens {
            let params = HadoopExperiment {
                cores: c,
                word_len: w,
                mappers: 4,
                bytes_per_mapper: 1024 * 1024,
                link_bits_per_sec: None,
            };
            let mbps = run_hadoop_experiment(&params);
            rows.push(Row::new(c, format!("WC {w} char"), mbps, "Mb/s"));
        }
    }
    print_table("Hadoop data aggregator vs CPU cores — Figure 6", &rows);
}
