//! CI bench-regression guard for the dispatcher-backend ablation.
//!
//! Runs the mostly-idle-connections ablation (poll vs. event dispatcher at
//! 256 connections) and compares the measured throughput against the
//! checked-in baseline `crates/bench/benches/baseline.json`:
//!
//! * `cargo run --release -p flick_bench --bin bench_guard` — compare;
//!   exits non-zero if any `req/s` series regressed more than 30% below
//!   its baseline (CI machines are noisy, hence the generous margin).
//! * `... --bin bench_guard -- --record` — overwrite the baseline with
//!   this machine's numbers (how the file was seeded, and how to re-seed
//!   after an intentional perf change).

use flick_bench::report::{print_table, rows_from_json, rows_to_json};
use flick_bench::run_dispatcher_backend_ablation;
use std::time::Duration;

/// Fraction of the baseline a throughput series may drop to before the
/// guard fails (1.0 - 0.30).
const REGRESSION_FLOOR: f64 = 0.70;

fn baseline_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/benches/baseline.json")
}

fn main() {
    let record = std::env::args().any(|a| a == "--record");
    let rows = run_dispatcher_backend_ablation(&[256], Duration::from_millis(400));
    print_table("Dispatcher backend ablation (current run)", &rows);

    if record {
        // Only throughput series are guarded; scan-rate rows are recorded
        // for context but never gate (they measure the *poll* backend's
        // busy-work, which is the thing the event backend deletes).
        std::fs::write(baseline_path(), rows_to_json(&rows) + "\n").expect("write baseline.json");
        println!("recorded baseline to {}", baseline_path());
        return;
    }

    let baseline_json = std::fs::read_to_string(baseline_path())
        .unwrap_or_else(|e| panic!("read {}: {e} (seed it with --record)", baseline_path()));
    let baseline = rows_from_json(&baseline_json).expect("parse baseline.json");

    let mut failures = Vec::new();

    // Machine-independent gate first: within this run, the event backend
    // must not lose to the poll backend it replaced (the acceptance bar of
    // the readiness layer). Ratios survive slow or noisy CI hosts that the
    // absolute baseline comparison below cannot account for.
    let series = |name: &str| {
        rows.iter()
            .find(|row| row.series == name && row.unit == "req/s")
            .map(|row| row.value)
    };
    match (series("event"), series("poll")) {
        (Some(event), Some(poll)) => {
            if event < poll {
                failures.push(format!(
                    "event backend lost to poll within this run: {event:.0} < {poll:.0} req/s"
                ));
            } else {
                println!("ok: event/poll ratio {:.2}x (must be >= 1)", event / poll);
            }
        }
        _ => failures.push("ablation run missing event/poll req/s series".to_string()),
    }
    for expected in baseline.iter().filter(|row| row.unit == "req/s") {
        let Some(current) = rows
            .iter()
            .find(|row| row.x == expected.x && row.series == expected.series)
        else {
            failures.push(format!(
                "series {:?} at x={} missing from current run",
                expected.series, expected.x
            ));
            continue;
        };
        let floor = expected.value * REGRESSION_FLOOR;
        if current.value < floor {
            failures.push(format!(
                "{} @ {} conns regressed: {:.0} req/s < 70% of baseline {:.0} req/s",
                expected.series, expected.x, current.value, expected.value
            ));
        } else {
            println!(
                "ok: {} @ {} conns: {:.0} req/s (baseline {:.0}, floor {:.0})",
                expected.series, expected.x, current.value, expected.value, floor
            );
        }
    }
    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("REGRESSION: {failure}");
        }
        std::process::exit(1);
    }
    let checked = baseline.iter().filter(|row| row.unit == "req/s").count();
    println!("bench guard passed ({checked} series checked)");
}
