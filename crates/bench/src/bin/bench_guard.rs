//! CI bench-regression guard.
//!
//! Runs reduced versions of the headline experiments and compares them
//! against the checked-in baseline `crates/bench/benches/baseline.json`:
//!
//! * the dispatcher-backend ablation (poll vs. event at 256 mostly-idle
//!   connections) — the PR 2 acceptance gate;
//! * the sharding ablation (fig5 with `--shards 1` vs `--shards 2`) — the
//!   sharded-runtime acceptance gate;
//! * the fig4 runner (FLICK HTTP load balancer, kernel stack) and the
//!   fig6 runner (Hadoop aggregation throughput), at reduced scale;
//! * the e2e loopback TCP point (static web service on a real OS socket,
//!   driven by the blocking loopback client pool) — the OS-transport
//!   acceptance gate.
//!
//! Two kinds of checks:
//!
//! * **Machine-independent ratios**, computed within this run: the event
//!   backend must not lose to the poll backend, the sharded runtime must
//!   not lose to the single-shard runtime (small tolerance for
//!   single-core hosts, where sharding has no parallel headroom to
//!   exploit and the expected ratio is ~1.0 rather than >1), and the
//!   real-socket service must stay within a bounded overhead of its
//!   simulated twin (the tcp/sim ratio). The sharded run must also show
//!   balanced per-shard utilization and live steal traffic — the
//!   structural claims of the sharding PR.
//! * **Absolute baselines** with a generous 30% floor (CI machines are
//!   noisy): any `req/s` or `Mbps` series dropping below 70% of its
//!   recorded baseline fails.
//!
//! Usage:
//!
//! * `cargo run --release -p flick_bench --bin bench_guard` — compare;
//!   exits non-zero on any failed check.
//! * `... --bin bench_guard -- --record` — overwrite the baseline with
//!   this machine's numbers (how the file was seeded, and how to re-seed
//!   after an intentional perf change).

use flick_bench::report::{print_table, rows_from_json, rows_to_json, Row};
use flick_bench::{
    max_open_files, run_dispatcher_backend_ablation, run_exec_mode_dispatch_experiment,
    run_flick_vm_lb_experiment, run_hadoop_experiment, run_hostile_goodput_experiment,
    run_http_experiment, run_output_mode_ablation, run_sharding_ablation, run_tcp_c10k_experiment,
    run_tcp_lb_experiment, run_tcp_loopback_experiment, run_tcp_sharding_curve,
    ExecModeDispatchExperiment, FlickVmLbExperiment, HadoopExperiment, HttpExperiment, HttpSystem,
    TcpC10kExperiment, TcpLbExperiment, TcpLbResult, TcpLoopbackExperiment, TcpLoopbackResult,
};
use std::time::Duration;

/// Fraction of the baseline a guarded series may drop to before the
/// guard fails (1.0 - 0.30).
const REGRESSION_FLOOR: f64 = 0.70;

/// The sharded-vs-single ratio floor. On a multi-core host sharding is
/// expected to win outright (>1); on a single-core host there is no
/// parallel headroom and the requirement degrades to "sharding must not
/// cost throughput" with a small noise allowance.
const SHARDING_RATIO_FLOOR: f64 = 0.95;

/// The tcp-vs-sim ratio floor: the service on a real kernel socket must
/// not fall below this fraction of its simulated twin (kernel cost model)
/// within the same run. Loopback measurements put the ratio around
/// 0.8–0.9; the floor leaves generous headroom for loaded CI hosts while
/// still catching a broken OS transport (a lost-wakeup stall or an
/// accidental poll regression collapses the ratio to near zero).
const TCP_SIM_RATIO_FLOOR: f64 = 0.25;

/// The all-TCP LB ratio floor: the `client → LB → backend` path crossing
/// real kernel sockets on every hop must stay within this fraction of its
/// simulated twin. Two socket hops per request make this noisier than the
/// single-hop loopback point, so the floor is lower; a stalled backend
/// pool or a lost writable wakeup still collapses it to near zero.
const TCP_LB_RATIO_FLOOR: f64 = 0.15;

/// The wakeup-vs-busy output ratio floor: with stalled peers pinned
/// against full pipes, parking output tasks on writable readiness must not
/// lose to busy retrying them (small noise allowance; on loaded hosts the
/// wakeup mode typically wins outright because busy retries bleed worker
/// time).
const OUTPUT_MODE_RATIO_FLOOR: f64 = 0.95;

/// Share of the fleet's requests replaced by malformed frames in the
/// hostile-goodput point.
const HOSTILE_SHARE: f64 = 0.10;

/// The hostile-goodput ratio floor: with `HOSTILE_SHARE` of requests
/// poisoned, the clean requests' completed rate must stay within this
/// fraction of the clean-run rate, within this run. Shedding a poison
/// frame costs one connection close and a reconnect, so the expected
/// ratio sits well above this; a collapse means malformed rejection has
/// become expensive, and a parser that started *answering* poison shows
/// up through the malformed-close structural check beside it. Observed
/// ratios sit around 0.55–0.7 (every poisoned turn burns a keep-alive
/// connection, so the cost is reconnect churn, not the poison itself);
/// the floor leaves room for single-core CI noise while still catching
/// a rejection path that turned quadratic or started timing out.
const HOSTILE_GOODPUT_RATIO_FLOOR: f64 = 0.40;

/// The VM-vs-interpreter dispatch ratio floor: compiled bytecode with a
/// direct-threaded dispatch loop must beat the tree-walking interpreter
/// on per-message dispatch of the same lowered program, within the same
/// run. Observed ratios sit around 1.2–1.3 (pre-decoded ops, interned
/// constants and grammar-seeded field-offset sites versus recursive
/// enum-tree walking); the gate only requires the VM to win at all,
/// best-of-three so a noisy pass cannot fail CI.
const EXEC_MODE_RATIO_FLOOR: f64 = 1.0;

fn baseline_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/benches/baseline.json")
}

/// The reduced fig4 point the guard tracks.
fn run_fig4_point() -> Row {
    let params = HttpExperiment {
        concurrency: 32,
        persistent: true,
        duration: Duration::from_millis(400),
        workers: 4,
        backends: 4,
    };
    let stats = run_http_experiment(HttpSystem::FlickKernel, &params);
    Row::new(
        params.concurrency,
        "fig4 FLICK",
        stats.requests_per_sec(),
        "req/s",
    )
}

/// The reduced fig6 point the guard tracks.
fn run_fig6_point() -> Row {
    let params = HadoopExperiment {
        cores: 2,
        word_len: 8,
        mappers: 4,
        bytes_per_mapper: 256 * 1024,
        link_bits_per_sec: None,
    };
    let mbps = run_hadoop_experiment(&params);
    Row::new(params.mappers, "fig6 hadoop", mbps, "Mbps")
}

fn main() {
    let record = std::env::args().any(|a| a == "--record");
    let mut rows = run_dispatcher_backend_ablation(&[256], Duration::from_millis(400));
    // The writable-interest ablation (wakeup-driven vs busy-retry output
    // under stalled peers); two passes. Like every other guarded series,
    // the recorded/checked rows take the best of the two passes (max
    // req/s, min retries) so a single noisy interval cannot fail CI —
    // the busy series in particular measures throughput scraps under
    // spinning peers and is inherently noisy.
    let output_modes = run_output_mode_ablation(Duration::from_millis(400));
    let output_modes_second = run_output_mode_ablation(Duration::from_millis(400));
    rows.extend(output_modes.iter().map(|row| {
        let second = output_modes_second
            .iter()
            .find(|other| other.series == row.series && other.x == row.x)
            .map(|other| other.value)
            .unwrap_or(row.value);
        let best = if row.unit == "retries" {
            row.value.min(second)
        } else {
            row.value.max(second)
        };
        Row::new(row.x.clone(), row.series.clone(), best, row.unit.clone())
    }));
    // Three passes over the sharding ablation; the ratio gate uses the
    // best run per configuration so a noisy interval on a loaded CI host
    // cannot fail the comparison. On a single-core box the ratio gate has
    // no parallel headroom at all — it measures pure sharding overhead
    // against a 5% allowance — so it needs the extra pass more than any
    // other gate here. Baseline rows come from the first pass.
    let sharding = run_sharding_ablation(&[1, 2], Duration::from_millis(600));
    let sharding_second = run_sharding_ablation(&[1, 2], Duration::from_millis(600));
    let sharding_third = run_sharding_ablation(&[1, 2], Duration::from_millis(600));
    rows.extend(sharding.iter().cloned());
    rows.push(run_fig4_point());
    rows.push(run_fig6_point());
    // The hostile-goodput point: the same LB shape as fig4, measured
    // clean and then under a 10% malformed-frame storm (best-of-two per
    // leg — door-slam shedding on a loaded host is noisy enough to want
    // the same variance treatment as the other ratio gates).
    let hostile_params = HttpExperiment {
        concurrency: 32,
        persistent: true,
        duration: Duration::from_millis(400),
        workers: 4,
        backends: 4,
    };
    let hostile_first = run_hostile_goodput_experiment(&hostile_params, HOSTILE_SHARE);
    let hostile_second = run_hostile_goodput_experiment(&hostile_params, HOSTILE_SHARE);
    let hostile_clean_best = hostile_first
        .clean
        .requests_per_sec()
        .max(hostile_second.clean.requests_per_sec());
    let hostile_goodput_best = hostile_first
        .hostile
        .requests_per_sec()
        .max(hostile_second.hostile.requests_per_sec());
    rows.push(Row::new(
        hostile_params.concurrency,
        "hostile clean",
        hostile_clean_best,
        "req/s",
    ));
    rows.push(Row::new(
        hostile_params.concurrency,
        "hostile goodput",
        hostile_goodput_best,
        "req/s",
    ));
    // The e2e loopback TCP point: two passes, best-of-two everywhere
    // (real sockets on a loaded CI host are noisier than the simulated
    // substrate — both the ratio gate and the absolute baseline rows use
    // the better pass so a single noisy interval cannot fail CI).
    let tcp_params = TcpLoopbackExperiment {
        concurrency: 16,
        duration: Duration::from_millis(400),
        workers: 4,
        shards: 1,
    };
    let tcp_first = run_tcp_loopback_experiment(&tcp_params);
    let tcp_second = run_tcp_loopback_experiment(&tcp_params);
    rows.push(Row::new(
        tcp_params.concurrency,
        "tcp loopback",
        tcp_first
            .tcp
            .requests_per_sec()
            .max(tcp_second.tcp.requests_per_sec()),
        "req/s",
    ));
    rows.push(Row::new(
        tcp_params.concurrency,
        "tcp sim twin",
        tcp_first
            .sim
            .requests_per_sec()
            .max(tcp_second.sim.requests_per_sec()),
        "req/s",
    ));
    // The all-TCP LB point (kernel client → LB → kernel backend), same
    // best-of-two treatment as the loopback point.
    let lb_params = TcpLbExperiment {
        concurrency: 16,
        duration: Duration::from_millis(400),
        workers: 4,
        backends: 4,
    };
    let lb_first = run_tcp_lb_experiment(&lb_params);
    let lb_second = run_tcp_lb_experiment(&lb_params);
    rows.push(Row::new(
        lb_params.concurrency,
        "tcp lb e2e",
        lb_first
            .tcp
            .requests_per_sec()
            .max(lb_second.tcp.requests_per_sec()),
        "req/s",
    ));
    rows.push(Row::new(
        lb_params.concurrency,
        "tcp lb sim twin",
        lb_first
            .sim
            .requests_per_sec()
            .max(lb_second.sim.requests_per_sec()),
        "req/s",
    ));
    // The execution-engine dispatch ablation: the tree-walking
    // interpreter vs the bytecode VM on per-message dispatch of the same
    // lowered program. Three passes; the gate takes the best VM/interp
    // ratio. The msg/s unit keeps these rows out of the 70% absolute
    // floor — the within-run ratio is the machine-independent quantity,
    // the absolute rates are recorded for context.
    let dispatch_params = ExecModeDispatchExperiment::default();
    let dispatch_passes = [
        run_exec_mode_dispatch_experiment(&dispatch_params),
        run_exec_mode_dispatch_experiment(&dispatch_params),
        run_exec_mode_dispatch_experiment(&dispatch_params),
    ];
    let dispatch_best = dispatch_passes
        .iter()
        .max_by(|a, b| {
            let ratio = |r: &flick_bench::ExecModeDispatchResult| {
                r.vm_msgs_per_sec / r.interp_msgs_per_sec.max(1e-9)
            };
            ratio(a).total_cmp(&ratio(b))
        })
        .expect("three passes");
    rows.push(Row::new(
        "dispatch",
        "interp dispatch",
        dispatch_best.interp_msgs_per_sec,
        "msg/s",
    ));
    rows.push(Row::new(
        "dispatch",
        "vm dispatch",
        dispatch_best.vm_msgs_per_sec,
        "msg/s",
    ));
    // The end-to-end compiled-LB point: the FLICK-compiled balancer (the
    // full compiler pipeline, not the hand-written factory) over real
    // kernel sockets in VM mode. Best-of-two like the other TCP points.
    let flick_lb_params = FlickVmLbExperiment {
        concurrency: 16,
        duration: Duration::from_millis(400),
        workers: 4,
        backends: 4,
    };
    let flick_lb_first = run_flick_vm_lb_experiment(&flick_lb_params);
    let flick_lb_second = run_flick_vm_lb_experiment(&flick_lb_params);
    let flick_lb_best =
        if flick_lb_first.stats.requests_per_sec() >= flick_lb_second.stats.requests_per_sec() {
            &flick_lb_first
        } else {
            &flick_lb_second
        };
    rows.push(Row::new(
        flick_lb_params.concurrency,
        "flick vm lb e2e",
        flick_lb_best.stats.requests_per_sec(),
        "req/s",
    ));
    // The kernel-path sharding curve: the same loopback service at 1 and
    // 2 shards, each shard with its own reactor thread and SO_REUSEPORT
    // accept socket. Three passes, best-of-three per shard count: like
    // the runtime sharding gate above, on a single-core host the ratio
    // measures pure sharding overhead against a 5% allowance, so it gets
    // the extra variance-reduction pass.
    const TCP_SHARD_MAX: usize = 2;
    let curve_first = run_tcp_sharding_curve(&tcp_params, TCP_SHARD_MAX);
    let curve_second = run_tcp_sharding_curve(&tcp_params, TCP_SHARD_MAX);
    let curve_third = run_tcp_sharding_curve(&tcp_params, TCP_SHARD_MAX);
    let curve_best_at = |shards: usize| {
        curve_first
            .iter()
            .chain(curve_second.iter())
            .chain(curve_third.iter())
            .filter(|point| point.shards == shards)
            .map(|point| point.tcp.requests_per_sec())
            .fold(None, |best: Option<f64>, v| {
                Some(best.map_or(v, |b| b.max(v)))
            })
    };
    for point in &curve_first {
        rows.push(Row::new(
            point.shards,
            "tcp sharded",
            curve_best_at(point.shards).unwrap_or(point.tcp.requests_per_sec()),
            "req/s",
        ));
    }
    // The c10k idle+active point: thousands of idle kernel connections
    // pinned against the reactor while a small closed loop measures
    // throughput. One pass — the gates on it are structural (zero-copy
    // laws, connection survival), not throughput-absolute beyond the 30%
    // floor.
    let c10k_params = TcpC10kExperiment::default();
    let c10k = run_tcp_c10k_experiment(&c10k_params);
    rows.push(Row::new(
        "10k",
        "tcp c10k active",
        c10k.active.requests_per_sec(),
        "req/s",
    ));
    rows.push(Row::new(
        "10k",
        "tcp c10k idle",
        c10k.idle_connected as f64,
        "conns",
    ));
    // Host metadata, recorded for context (units outside req/s|Mbps are
    // never gated on absolute values): how many cores and fds shaped the
    // numbers above, and the sharding config the curve ran at.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    rows.push(Row::new("host", "host cores", cores as f64, "cores"));
    rows.push(Row::new(
        "host",
        "host fd limit",
        max_open_files() as f64,
        "fds",
    ));
    rows.push(Row::new(
        "host",
        "tcp shard config",
        TCP_SHARD_MAX as f64,
        "shards",
    ));
    print_table("Bench guard (current run)", &rows);

    if record {
        // Only throughput series are guarded; scan-rate, utilization and
        // steal rows are recorded for context but never gate on absolute
        // values (they are asserted structurally within the run instead).
        std::fs::write(baseline_path(), rows_to_json(&rows) + "\n").expect("write baseline.json");
        println!("recorded baseline to {}", baseline_path());
        return;
    }

    let baseline_json = std::fs::read_to_string(baseline_path())
        .unwrap_or_else(|e| panic!("read {}: {e} (seed it with --record)", baseline_path()));
    let baseline = rows_from_json(&baseline_json).expect("parse baseline.json");

    let mut failures = Vec::new();

    // Machine-independent gate 1: within this run, the event backend must
    // not lose to the poll backend it replaced (the acceptance bar of the
    // readiness layer). Ratios survive slow or noisy CI hosts that the
    // absolute baseline comparison below cannot account for.
    let series = |name: &str| {
        rows.iter()
            .find(|row| row.series == name && row.unit == "req/s")
            .map(|row| row.value)
    };
    match (series("event"), series("poll")) {
        (Some(event), Some(poll)) => {
            if event < poll {
                failures.push(format!(
                    "event backend lost to poll within this run: {event:.0} < {poll:.0} req/s"
                ));
            } else {
                println!("ok: event/poll ratio {:.2}x (must be >= 1)", event / poll);
            }
        }
        _ => failures.push("ablation run missing event/poll req/s series".to_string()),
    }

    // Machine-independent gate 1b: with stalled peers, the wakeup-driven
    // output path must not lose to the busy-retry loop it replaced, and it
    // must not busy-retry at all (the structural claim: a stalled peer
    // parks its writer). Best-of-two per mode for the ratio; the retry
    // assertion accepts either pass being clean.
    let output_series = |pass: &[Row], name: &str| {
        pass.iter()
            .find(|row| row.series == name)
            .map(|row| row.value)
    };
    let best_output = |name: &str| {
        [&output_modes, &output_modes_second]
            .into_iter()
            .filter_map(|pass| output_series(pass, name))
            .fold(None, |best: Option<f64>, v| {
                Some(best.map_or(v, |b| b.max(v)))
            })
    };
    match (best_output("output wakeup"), best_output("output busy")) {
        (Some(wakeup), Some(busy)) => {
            let ratio = wakeup / busy.max(1e-9);
            if ratio < OUTPUT_MODE_RATIO_FLOOR {
                failures.push(format!(
                    "wakeup-driven output lost to busy retry under stalled peers: \
                     {wakeup:.0} vs {busy:.0} req/s (ratio {ratio:.2}, floor \
                     {OUTPUT_MODE_RATIO_FLOOR})"
                ));
            } else {
                println!(
                    "ok: output wakeup/busy ratio {ratio:.2}x (floor {OUTPUT_MODE_RATIO_FLOOR})"
                );
            }
        }
        _ => failures.push("output-mode ablation missing req/s series".to_string()),
    }
    let wakeup_retries = [&output_modes, &output_modes_second]
        .into_iter()
        .filter_map(|pass| output_series(pass, "output wakeup retries"))
        .fold(None, |best: Option<f64>, v| {
            Some(best.map_or(v, |b| b.min(v)))
        });
    match wakeup_retries {
        Some(retries) => {
            if retries == 0.0 {
                println!("ok: wakeup-driven output performed 0 busy retries under stalled peers");
            } else {
                failures.push(format!(
                    "wakeup-driven output busy-retried {retries:.0} times under stalled peers \
                     (writable parking is broken)"
                ));
            }
        }
        None => failures.push("output-mode ablation missing retries series".to_string()),
    }

    // Machine-independent gate 2: the sharded runtime vs the single-shard
    // runtime, same workload, same worker budget, within this run
    // (best-of-three per configuration).
    let sharded_at = |x: usize| {
        sharding
            .iter()
            .chain(sharding_second.iter())
            .chain(sharding_third.iter())
            .filter(|row| row.series == "sharded" && row.x == x.to_string())
            .map(|row| row.value)
            .fold(None, |best: Option<f64>, v| {
                Some(best.map_or(v, |b| b.max(v)))
            })
    };
    match (sharded_at(1), sharded_at(2)) {
        (Some(single), Some(sharded)) => {
            let ratio = sharded / single;
            if ratio < SHARDING_RATIO_FLOOR {
                failures.push(format!(
                    "sharded runtime lost to single-shard: {sharded:.0} vs {single:.0} req/s \
                     (ratio {ratio:.2}, floor {SHARDING_RATIO_FLOOR})"
                ));
            } else {
                println!(
                    "ok: sharded/single ratio {ratio:.2}x (floor {SHARDING_RATIO_FLOOR}; \
                     expected > 1 on multi-core hosts)"
                );
            }
        }
        _ => failures.push("sharding ablation missing req/s series".to_string()),
    }
    // Structural claims of the sharded run: both shards did comparable
    // work (placement balance) and the steal path was exercised. Like the
    // ratio gate, these accept the best of the passes so a single noisy
    // interval cannot fail CI.
    let structural = |pass: &[Row]| -> Result<(Vec<f64>, f64), String> {
        let utils: Vec<f64> = pass
            .iter()
            .filter(|row| row.x == "2" && row.unit == "%")
            .map(|row| row.value)
            .collect();
        if utils.len() != 2 {
            return Err(format!(
                "expected 2 per-shard utilization rows for the 2-shard run, got {}",
                utils.len()
            ));
        }
        if utils.iter().any(|share| !(20.0..=80.0).contains(share)) {
            return Err(format!(
                "per-shard utilization is imbalanced: {utils:?} (each share must be 20–80%)"
            ));
        }
        let steals = pass
            .iter()
            .find(|row| row.x == "2" && row.series == "steals")
            .map(|row| row.value)
            .ok_or_else(|| "sharding ablation missing steals row".to_string())?;
        if steals <= 0.0 {
            return Err("no cross-shard steals in the 2-shard run".to_string());
        }
        Ok((utils, steals))
    };
    match structural(&sharding)
        .or_else(|first| structural(&sharding_second).map_err(|_| first))
        .or_else(|first| structural(&sharding_third).map_err(|_| first))
    {
        Ok((utils, steals)) => {
            println!("ok: per-shard utilization balanced ({utils:?})");
            println!("ok: cross-shard steal path exercised ({steals:.0} tasks)");
        }
        Err(failure) => failures.push(failure),
    }

    // Machine-independent gate 3: the OS transport vs its simulated twin,
    // same platform, same workload shape, within this run (best-of-two).
    let tcp_best = [&tcp_first, &tcp_second]
        .into_iter()
        .max_by(|a, b| {
            let ratio = |r: &TcpLoopbackResult| {
                r.tcp.requests_per_sec() / r.sim.requests_per_sec().max(1e-9)
            };
            ratio(a).total_cmp(&ratio(b))
        })
        .expect("two passes");
    let tcp_ratio = tcp_best.tcp.requests_per_sec() / tcp_best.sim.requests_per_sec().max(1e-9);
    if tcp_ratio < TCP_SIM_RATIO_FLOOR {
        failures.push(format!(
            "real-socket service lost to its simulated twin: ratio {tcp_ratio:.2} \
             (floor {TCP_SIM_RATIO_FLOOR}; tcp {:.0} vs sim {:.0} req/s)",
            tcp_best.tcp.requests_per_sec(),
            tcp_best.sim.requests_per_sec()
        ));
    } else {
        println!("ok: tcp/sim loopback ratio {tcp_ratio:.2} (floor {TCP_SIM_RATIO_FLOOR})");
    }

    // Machine-independent gate 3b: sharding the kernel event path
    // (per-shard reactors + REUSEPORT accept sockets) must not cost
    // throughput relative to the single-reactor run. On multi-core hosts
    // it should win outright; on a single core the expected ratio is ~1.
    match (curve_best_at(1), curve_best_at(TCP_SHARD_MAX)) {
        (Some(single), Some(sharded)) => {
            let ratio = sharded / single.max(1e-9);
            if ratio < SHARDING_RATIO_FLOOR {
                failures.push(format!(
                    "kernel-path sharding lost to a single reactor: {sharded:.0} vs \
                     {single:.0} req/s (ratio {ratio:.2}, floor {SHARDING_RATIO_FLOOR})"
                ));
            } else {
                println!("ok: tcp sharded/single ratio {ratio:.2}x (floor {SHARDING_RATIO_FLOOR})");
            }
        }
        _ => failures.push("tcp sharding curve missing 1-shard or max-shard point".to_string()),
    }

    // Machine-independent gate 3c: the c10k structural claims. The idle
    // mass must actually connect and survive the active run, and the
    // kernel path must hold both zero-copy laws under it.
    if c10k.idle_connected * 100 < c10k.idle_requested * 99 {
        failures.push(format!(
            "c10k: only {}/{} idle connections established",
            c10k.idle_connected, c10k.idle_requested
        ));
    } else if c10k.idle_survivors < c10k.idle_connected {
        failures.push(format!(
            "c10k: {} of {} idle connections died during the active run",
            c10k.idle_connected - c10k.idle_survivors,
            c10k.idle_connected
        ));
    } else {
        println!(
            "ok: c10k held {} idle connections through the active run \
             ({:.0} req/s active)",
            c10k.idle_survivors,
            c10k.active.requests_per_sec()
        );
    }
    if c10k.ingest_copies != 0 {
        failures.push(format!(
            "c10k: kernel path charged {} ingest copies (zero-copy law broken)",
            c10k.ingest_copies
        ));
    } else {
        println!("ok: c10k kernel path charged 0 ingest copies");
    }
    if c10k.output_busy_retries != 0 {
        failures.push(format!(
            "c10k: output tasks busy-retried {} times (writable parking broken)",
            c10k.output_busy_retries
        ));
    } else {
        println!("ok: c10k output tasks performed 0 busy retries");
    }

    // Machine-independent gate 4: the all-TCP LB path vs its simulated
    // twin (best-of-two), plus the structural claim that the TCP backend
    // pool actually spread requests over the kernel-socket back-ends.
    let lb_best = [&lb_first, &lb_second]
        .into_iter()
        .max_by(|a, b| {
            let ratio =
                |r: &TcpLbResult| r.tcp.requests_per_sec() / r.sim.requests_per_sec().max(1e-9);
            ratio(a).total_cmp(&ratio(b))
        })
        .expect("two passes");
    let lb_ratio = lb_best.tcp.requests_per_sec() / lb_best.sim.requests_per_sec().max(1e-9);
    if lb_ratio < TCP_LB_RATIO_FLOOR {
        failures.push(format!(
            "all-TCP LB lost to its simulated twin: ratio {lb_ratio:.2} \
             (floor {TCP_LB_RATIO_FLOOR}; tcp {:.0} vs sim {:.0} req/s)",
            lb_best.tcp.requests_per_sec(),
            lb_best.sim.requests_per_sec()
        ));
    } else {
        println!("ok: all-TCP lb/sim ratio {lb_ratio:.2} (floor {TCP_LB_RATIO_FLOOR})");
    }
    let lb_backends_hit = lb_best
        .backend_requests
        .iter()
        .filter(|served| **served > 0)
        .count();
    if lb_backends_hit < 2 {
        failures.push(format!(
            "all-TCP LB reached only {lb_backends_hit} TCP back-end(s): {:?}",
            lb_best.backend_requests
        ));
    } else {
        println!(
            "ok: all-TCP LB spread requests over {lb_backends_hit} kernel-socket back-ends \
             ({:?})",
            lb_best.backend_requests
        );
    }

    // Machine-independent gate 5: goodput under hostile traffic. The
    // ratio compares within a pass (best-of-two passes), so host speed
    // cancels out; the structural checks pin down that poison actually
    // flowed and was shed as malformed closes rather than answered.
    let hostile_best = [&hostile_first, &hostile_second]
        .into_iter()
        .max_by(|a, b| {
            let ratio = |r: &flick_bench::HostileGoodputResult| {
                r.hostile.requests_per_sec() / r.clean.requests_per_sec().max(1e-9)
            };
            ratio(a).total_cmp(&ratio(b))
        })
        .expect("two passes");
    let hostile_ratio =
        hostile_best.hostile.requests_per_sec() / hostile_best.clean.requests_per_sec().max(1e-9);
    if hostile_ratio < HOSTILE_GOODPUT_RATIO_FLOOR {
        failures.push(format!(
            "goodput collapsed under {}% malformed traffic: ratio {hostile_ratio:.2} \
             (floor {HOSTILE_GOODPUT_RATIO_FLOOR}; hostile {:.0} vs clean {:.0} req/s)",
            (HOSTILE_SHARE * 100.0) as u32,
            hostile_best.hostile.requests_per_sec(),
            hostile_best.clean.requests_per_sec()
        ));
    } else {
        println!(
            "ok: hostile/clean goodput ratio {hostile_ratio:.2} under {}% poison \
             (floor {HOSTILE_GOODPUT_RATIO_FLOOR})",
            (HOSTILE_SHARE * 100.0) as u32
        );
    }
    if hostile_best.hostile.malformed_sent == 0 {
        failures.push("hostile run sent no malformed frames (storm misconfigured)".to_string());
    } else if hostile_best.malformed_closes == 0 {
        failures.push(format!(
            "{} malformed frames sent but zero malformed closes recorded \
             (the parser stopped rejecting poison)",
            hostile_best.hostile.malformed_sent
        ));
    } else {
        println!(
            "ok: hostile run shed poison as malformed closes ({} sent, {} closed)",
            hostile_best.hostile.malformed_sent, hostile_best.malformed_closes
        );
    }

    // Machine-independent gate 6: the bytecode VM must beat the
    // tree-walking interpreter on per-message dispatch of the same
    // program (best-of-three). Host speed cancels out within the run.
    let exec_ratio = dispatch_best.vm_msgs_per_sec / dispatch_best.interp_msgs_per_sec.max(1e-9);
    if exec_ratio <= EXEC_MODE_RATIO_FLOOR {
        failures.push(format!(
            "bytecode VM lost to the tree-walking interpreter: ratio {exec_ratio:.2} \
             (must be > {EXEC_MODE_RATIO_FLOOR}; vm {:.0} vs interp {:.0} msg/s)",
            dispatch_best.vm_msgs_per_sec, dispatch_best.interp_msgs_per_sec
        ));
    } else {
        println!(
            "ok: vm/interp dispatch ratio {exec_ratio:.2}x (must be > {EXEC_MODE_RATIO_FLOOR}; \
             vm {:.0} vs interp {:.0} msg/s)",
            dispatch_best.vm_msgs_per_sec, dispatch_best.interp_msgs_per_sec
        );
    }

    // Structural gate beside it: the compiled balancer in VM mode
    // actually served traffic end to end and spread it over the kernel
    // back-ends (its absolute rate is additionally under the 30% floor
    // through the `flick vm lb e2e` baseline row).
    let flick_lb_backends_hit = flick_lb_best
        .backend_requests
        .iter()
        .filter(|served| **served > 0)
        .count();
    if flick_lb_best.stats.completed == 0 {
        failures.push("compiled VM-mode LB completed zero requests".to_string());
    } else if flick_lb_backends_hit < 2 {
        failures.push(format!(
            "compiled VM-mode LB reached only {flick_lb_backends_hit} TCP back-end(s): {:?}",
            flick_lb_best.backend_requests
        ));
    } else {
        println!(
            "ok: compiled VM-mode LB spread {} requests over {flick_lb_backends_hit} \
             kernel-socket back-ends ({:?})",
            flick_lb_best.stats.completed, flick_lb_best.backend_requests
        );
    }

    // Absolute baselines, 30% floor, for every throughput series. The
    // "output busy" series is exempt: it measures throughput scraps under
    // deliberately spinning peers — inherently noisier than 30% headroom
    // can absorb — and the property this PR defends is already gated
    // twice (the wakeup/busy ratio and the retries==0 structural check);
    // its row is recorded for context only.
    for expected in baseline
        .iter()
        .filter(|row| (row.unit == "req/s" || row.unit == "Mbps") && row.series != "output busy")
    {
        let Some(current) = rows
            .iter()
            .find(|row| row.x == expected.x && row.series == expected.series)
        else {
            failures.push(format!(
                "series {:?} at x={} missing from current run",
                expected.series, expected.x
            ));
            continue;
        };
        let floor = expected.value * REGRESSION_FLOOR;
        if current.value < floor {
            failures.push(format!(
                "{} @ x={} regressed: {:.0} {} < 70% of baseline {:.0} {}",
                expected.series,
                expected.x,
                current.value,
                current.unit,
                expected.value,
                expected.unit
            ));
        } else {
            println!(
                "ok: {} @ x={}: {:.0} {} (baseline {:.0}, floor {:.0})",
                expected.series, expected.x, current.value, current.unit, expected.value, floor
            );
        }
    }
    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("REGRESSION: {failure}");
        }
        std::process::exit(1);
    }
    let checked = baseline
        .iter()
        .filter(|row| (row.unit == "req/s" || row.unit == "Mbps") && row.series != "output busy")
        .count();
    println!("bench guard passed ({checked} absolute series + 10 ratio/structural gates checked)");
}
