//! Regenerates Figure 7: completion times of "light" (1 KB items) and
//! "heavy" (16 KB items) task classes under the cooperative, non-cooperative
//! and round-robin scheduling policies.
//!
//! Paper shape: under FLICK's cooperative policy the light tasks finish well
//! before the heavy ones without increasing the overall runtime; round-robin
//! delays everything; non-cooperative makes completion order depend on
//! scheduling order (light and heavy finish together, late).

use flick_bench::{print_table, run_sharing_experiment, Row, SharingExperiment};
use flick_runtime::SchedulingPolicy;
use std::time::Duration;

fn main() {
    let params = SharingExperiment {
        tasks_per_class: 100,
        items_per_task: 400,
        workers: 2,
    };
    let mut rows = Vec::new();
    for (label, policy) in [
        (
            "Cooperative",
            SchedulingPolicy::Cooperative {
                timeslice: Duration::from_micros(50),
            },
        ),
        ("Non cooperative", SchedulingPolicy::NonCooperative),
        ("Round robin", SchedulingPolicy::RoundRobin),
    ] {
        let result = run_sharing_experiment(policy, &params);
        rows.push(Row::new(
            label,
            "Light",
            result.light_completion.as_secs_f64(),
            "s",
        ));
        rows.push(Row::new(
            label,
            "Heavy",
            result.heavy_completion.as_secs_f64(),
            "s",
        ));
    }
    print_table("Resource sharing micro-benchmark — Figure 7", &rows);
}
