//! Regenerates Figure 4: HTTP load balancer throughput and mean latency for
//! an increasing number of concurrent clients, with persistent (4a/4b) and
//! non-persistent (4c/4d) connections.
//!
//! Paper shape: with persistent connections FLICK beats Nginx (~1.4x) and
//! Apache (~2.2x), and FLICK mTCP more still; with non-persistent
//! connections FLICK (kernel) drops below Apache/Nginx while FLICK mTCP is
//! the fastest of all.

use flick_bench::{print_table, run_http_experiment, HttpExperiment, HttpSystem, Row};
use std::time::Duration;

fn main() {
    let concurrencies = [16usize, 32, 64, 128];
    for persistent in [true, false] {
        let mut rows = Vec::new();
        for &concurrency in &concurrencies {
            for system in HttpSystem::all() {
                let params = HttpExperiment {
                    concurrency,
                    persistent,
                    duration: Duration::from_millis(700),
                    workers: 4,
                    backends: 4,
                };
                let stats = run_http_experiment(system, &params);
                rows.push(Row::new(
                    concurrency,
                    system.label(),
                    stats.requests_per_sec(),
                    "req/s",
                ));
                rows.push(Row::new(
                    concurrency,
                    format!("{} latency", system.label()),
                    stats.latency.mean.as_secs_f64() * 1000.0,
                    "ms",
                ));
            }
        }
        let fig = if persistent {
            "Figure 4a/4b (persistent)"
        } else {
            "Figure 4c/4d (non-persistent)"
        };
        print_table(&format!("HTTP load balancer — {fig}"), &rows);
    }
}
