//! Regenerates Figure 5: Memcached proxy throughput and latency versus the
//! number of CPU cores, comparing FLICK (kernel and mTCP) against the
//! Moxi-like baseline.
//!
//! Paper shape: FLICK kernel peaks around 126 krps at 8 cores, FLICK mTCP
//! around 198 krps at 16 cores, Moxi peaks around 82 krps at 4 cores and
//! stops scaling (shared-state contention).
//!
//! Flags:
//!
//! * `--shards=N` — shard count for the FLICK systems (default 1, the
//!   pre-sharding single-reactor runtime). With `N > 1` the platform runs
//!   one scheduler pool + dispatcher + poller per shard, places graphs
//!   round-robin and steals across shards.
//! * `--backend=poll|event` — dispatcher backend for the FLICK systems
//!   (default: event). Run once with each to ablate the dispatcher.
//! * `--no-ablation` — skip the dispatcher-backend idle-connection
//!   ablation and the sharding-on/off ablation tables printed after the
//!   main figure.
//!
//! The sharding ablation reports **per-shard** utilization (each shard's
//! share of task executions) rather than a single aggregate, so placement
//! imbalance — and the steal traffic correcting it — is visible directly
//! in the table.

use flick_bench::{
    print_table, run_dispatcher_backend_ablation, run_memcached_experiment, run_sharding_ablation,
    MemcachedExperiment, MemcachedSystem, Row,
};
use flick_runtime::DispatcherBackend;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let backend = args
        .iter()
        .find_map(|a| a.strip_prefix("--backend="))
        .map(|value| match value {
            "poll" => DispatcherBackend::Poll,
            "event" => DispatcherBackend::Event,
            other => panic!("unknown dispatcher backend {other:?} (poll|event)"),
        })
        .unwrap_or_default();
    let shards: usize = args
        .iter()
        .find_map(|a| a.strip_prefix("--shards="))
        .map(|value| value.parse().expect("--shards takes a positive integer"))
        .unwrap_or(1);
    let cores = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    for &c in &cores {
        for system in MemcachedSystem::all() {
            let params = MemcachedExperiment {
                cores: c,
                shards,
                clients: 48,
                backends: 4,
                duration: Duration::from_millis(700),
                dispatcher: backend,
            };
            let stats = run_memcached_experiment(system, &params);
            rows.push(Row::new(
                c,
                system.label(),
                stats.requests_per_sec(),
                "req/s",
            ));
            rows.push(Row::new(
                c,
                format!("{} latency", system.label()),
                stats.latency.mean.as_secs_f64() * 1000.0,
                "ms",
            ));
        }
    }
    print_table(
        &format!(
            "Memcached proxy vs CPU cores — Figure 5a/5b ({} dispatcher, {} shard{})",
            backend.label(),
            shards,
            if shards == 1 { "" } else { "s" }
        ),
        &rows,
    );

    if !args.iter().any(|a| a == "--no-ablation") {
        let rows = run_dispatcher_backend_ablation(&[64, 256], Duration::from_millis(400));
        print_table(
            "Dispatcher backend ablation — mostly-idle connections",
            &rows,
        );
        let rows = run_sharding_ablation(&[1, 2, 4], Duration::from_millis(400));
        print_table(
            "Sharding ablation — aggregate req/s + per-shard utilization",
            &rows,
        );
    }
}
