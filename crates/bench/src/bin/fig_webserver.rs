//! Regenerates the static web-server results of §6.3 (throughput for an
//! increasing number of concurrent connections, persistent and
//! non-persistent), comparing FLICK (kernel and mTCP cost models) against
//! the Apache-like and Nginx-like baselines.
//!
//! Paper reference points (16-core testbed): peak ~306 krps (FLICK kernel),
//! ~380 krps (FLICK mTCP), ~159 krps (Apache), ~217 krps (Nginx) with
//! persistent connections; ~45/193/35/44 krps non-persistent.
//!
//! `--tcp` switches to the OS transport: the same static web service is
//! deployed on a real loopback socket (`Platform::deploy_tcp`) next to its
//! simulated twin, driven by the blocking real-socket client pool, and the
//! table reports both series plus the tcp/sim ratio per concurrency.

use flick_bench::{print_table, Row};
use flick_bench::{
    run_http_experiment, run_tcp_loopback_experiment, HttpExperiment, HttpSystem,
    TcpLoopbackExperiment,
};
use std::time::Duration;

/// The `--tcp` mode: real kernel sockets versus the simulated kernel cost
/// model, same platform, increasing client fleets. `--shards N` runs the
/// kernel path sharded: one reactor thread and one `SO_REUSEPORT` accept
/// socket per shard.
fn run_tcp_mode(shards: usize) {
    let mut rows = Vec::new();
    for concurrency in [4usize, 16, 32] {
        let result = run_tcp_loopback_experiment(&TcpLoopbackExperiment {
            concurrency,
            duration: Duration::from_millis(500),
            workers: 4,
            shards,
        });
        rows.push(Row::new(
            concurrency,
            "FLICK tcp",
            result.tcp.requests_per_sec(),
            "req/s",
        ));
        rows.push(Row::new(
            concurrency,
            "FLICK tcp latency",
            result.tcp.latency.mean.as_secs_f64() * 1000.0,
            "ms",
        ));
        rows.push(Row::new(
            concurrency,
            "FLICK sim",
            result.sim.requests_per_sec(),
            "req/s",
        ));
        rows.push(Row::new(
            concurrency,
            "tcp/sim ratio",
            result.tcp.requests_per_sec() / result.sim.requests_per_sec().max(1e-9),
            "x",
        ));
    }
    print_table(
        "Static web server over real loopback TCP vs the simulated substrate",
        &rows,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--tcp") {
        let shards = args
            .iter()
            .position(|a| a == "--shards")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        run_tcp_mode(shards);
        return;
    }
    let concurrencies = [16usize, 32, 64, 128];
    for persistent in [true, false] {
        let mut rows = Vec::new();
        for &concurrency in &concurrencies {
            for system in HttpSystem::all() {
                let params = HttpExperiment {
                    concurrency,
                    persistent,
                    duration: Duration::from_millis(700),
                    workers: 4,
                    backends: 0,
                };
                let stats = run_http_experiment(system, &params);
                rows.push(Row::new(
                    concurrency,
                    system.label(),
                    stats.requests_per_sec(),
                    "req/s",
                ));
                rows.push(Row::new(
                    concurrency,
                    format!("{} latency", system.label()),
                    stats.latency.mean.as_secs_f64() * 1000.0,
                    "ms",
                ));
            }
        }
        let mode = if persistent {
            "persistent"
        } else {
            "non-persistent"
        };
        print_table(
            &format!("Static web server, {mode} connections (paper §6.3)"),
            &rows,
        );
    }
}
