//! Regenerates the static web-server results of §6.3 (throughput for an
//! increasing number of concurrent connections, persistent and
//! non-persistent), comparing FLICK (kernel and mTCP cost models) against
//! the Apache-like and Nginx-like baselines.
//!
//! Paper reference points (16-core testbed): peak ~306 krps (FLICK kernel),
//! ~380 krps (FLICK mTCP), ~159 krps (Apache), ~217 krps (Nginx) with
//! persistent connections; ~45/193/35/44 krps non-persistent.

use flick_bench::{print_table, Row};
use flick_bench::{run_http_experiment, HttpExperiment, HttpSystem};
use std::time::Duration;

fn main() {
    let concurrencies = [16usize, 32, 64, 128];
    for persistent in [true, false] {
        let mut rows = Vec::new();
        for &concurrency in &concurrencies {
            for system in HttpSystem::all() {
                let params = HttpExperiment {
                    concurrency,
                    persistent,
                    duration: Duration::from_millis(700),
                    workers: 4,
                    backends: 0,
                };
                let stats = run_http_experiment(system, &params);
                rows.push(Row::new(
                    concurrency,
                    system.label(),
                    stats.requests_per_sec(),
                    "req/s",
                ));
                rows.push(Row::new(
                    concurrency,
                    format!("{} latency", system.label()),
                    stats.latency.mean.as_secs_f64() * 1000.0,
                    "ms",
                ));
            }
        }
        let mode = if persistent {
            "persistent"
        } else {
            "non-persistent"
        };
        print_table(
            &format!("Static web server, {mode} connections (paper §6.3)"),
            &rows,
        );
    }
}
