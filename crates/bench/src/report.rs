//! Table formatting for the figure harness binaries.

/// One row of a figure's data series.
#[derive(Debug, Clone)]
pub struct Row {
    /// The x-axis value (concurrency, cores, word length, policy...).
    pub x: String,
    /// The system / series label.
    pub series: String,
    /// The measured value.
    pub value: f64,
    /// The measurement unit.
    pub unit: String,
}

impl Row {
    /// Creates a row.
    pub fn new(
        x: impl ToString,
        series: impl Into<String>,
        value: f64,
        unit: impl Into<String>,
    ) -> Self {
        Row {
            x: x.to_string(),
            series: series.into(),
            value,
            unit: unit.into(),
        }
    }
}

/// Serialises rows as a JSON array (hand-rolled: the offline build has no
/// serde, see DESIGN.md §7; the schema is four fixed fields per row).
pub fn rows_to_json(rows: &[Row]) -> String {
    let mut json = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"x\":{},\"series\":{},\"value\":{},\"unit\":{}}}",
            json_string(&row.x),
            json_string(&row.series),
            json_number(row.value),
            json_string(&row.unit),
        ));
    }
    json.push(']');
    json
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    // JSON has no NaN/Infinity; null is the conventional stand-in.
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Prints a title, the rows as an aligned table, and a JSON dump (one line)
/// for downstream processing.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    println!(
        "{:<14} {:<22} {:>14} {:<10}",
        "x", "series", "value", "unit"
    );
    for row in rows {
        println!(
            "{:<14} {:<22} {:>14.1} {:<10}",
            row.x, row.series, row.value, row.unit
        );
    }
    println!("JSON: {}", rows_to_json(rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_serialise() {
        let rows = vec![Row::new(100, "flick-kernel", 12345.6, "req/s")];
        let json = rows_to_json(&rows);
        assert!(json.contains("flick-kernel"));
        assert_eq!(
            json,
            r#"[{"x":"100","series":"flick-kernel","value":12345.6,"unit":"req/s"}]"#
        );
        print_table("test", &rows);
    }

    #[test]
    fn json_escapes_and_non_finite() {
        let rows = vec![Row::new("a\"b\n", "s\\t", f64::NAN, "u")];
        assert_eq!(
            rows_to_json(&rows),
            r#"[{"x":"a\"b\n","series":"s\\t","value":null,"unit":"u"}]"#
        );
    }
}
