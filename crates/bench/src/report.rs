//! Table formatting for the figure harness binaries.

use serde::Serialize;

/// One row of a figure's data series.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// The x-axis value (concurrency, cores, word length, policy...).
    pub x: String,
    /// The system / series label.
    pub series: String,
    /// The measured value.
    pub value: f64,
    /// The measurement unit.
    pub unit: String,
}

impl Row {
    /// Creates a row.
    pub fn new(x: impl ToString, series: impl Into<String>, value: f64, unit: impl Into<String>) -> Self {
        Row { x: x.to_string(), series: series.into(), value, unit: unit.into() }
    }
}

/// Prints a title, the rows as an aligned table, and a JSON dump (one line)
/// for downstream processing.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    println!("{:<14} {:<22} {:>14} {:<10}", "x", "series", "value", "unit");
    for row in rows {
        println!("{:<14} {:<22} {:>14.1} {:<10}", row.x, row.series, row.value, row.unit);
    }
    if let Ok(json) = serde_json::to_string(rows) {
        println!("JSON: {json}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_serialise() {
        let rows = vec![Row::new(100, "flick-kernel", 12345.6, "req/s")];
        let json = serde_json::to_string(&rows).unwrap();
        assert!(json.contains("flick-kernel"));
        print_table("test", &rows);
    }
}
