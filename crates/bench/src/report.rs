//! Table formatting for the figure harness binaries.

/// One row of a figure's data series.
#[derive(Debug, Clone)]
pub struct Row {
    /// The x-axis value (concurrency, cores, word length, policy...).
    pub x: String,
    /// The system / series label.
    pub series: String,
    /// The measured value.
    pub value: f64,
    /// The measurement unit.
    pub unit: String,
}

impl Row {
    /// Creates a row.
    pub fn new(
        x: impl ToString,
        series: impl Into<String>,
        value: f64,
        unit: impl Into<String>,
    ) -> Self {
        Row {
            x: x.to_string(),
            series: series.into(),
            value,
            unit: unit.into(),
        }
    }
}

/// Serialises rows as a JSON array (hand-rolled: the offline build has no
/// serde, see DESIGN.md §7; the schema is four fixed fields per row).
pub fn rows_to_json(rows: &[Row]) -> String {
    let mut json = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"x\":{},\"series\":{},\"value\":{},\"unit\":{}}}",
            json_string(&row.x),
            json_string(&row.series),
            json_number(row.value),
            json_string(&row.unit),
        ));
    }
    json.push(']');
    json
}

/// Parses a JSON array produced by [`rows_to_json`] back into rows (the CI
/// bench-regression guard reads the checked-in baseline with this). Only
/// the four-field flat schema is supported; anything else is an error.
pub fn rows_from_json(json: &str) -> Result<Vec<Row>, String> {
    let mut parser = Parser {
        bytes: json.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    parser.expect(b'[')?;
    let mut rows = Vec::new();
    parser.skip_ws();
    if parser.peek() == Some(b']') {
        return Ok(rows);
    }
    loop {
        rows.push(parser.parse_row()?);
        parser.skip_ws();
        match parser.next() {
            Some(b',') => continue,
            Some(b']') => return Ok(rows),
            other => return Err(format!("expected ',' or ']', got {other:?}")),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn parse_row(&mut self) -> Result<Row, String> {
        self.skip_ws();
        self.expect(b'{')?;
        let mut x = None;
        let mut series = None;
        let mut value = None;
        let mut unit = None;
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            match key.as_str() {
                "x" => x = Some(self.parse_string()?),
                "series" => series = Some(self.parse_string()?),
                "unit" => unit = Some(self.parse_string()?),
                "value" => value = Some(self.parse_number()?),
                other => return Err(format!("unknown key {other:?}")),
            }
            self.skip_ws();
            match self.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
        Ok(Row {
            x: x.ok_or("row missing \"x\"")?,
            series: series.ok_or("row missing \"series\"")?,
            value: value.ok_or("row missing \"value\"")?,
            unit: unit.ok_or("row missing \"unit\"")?,
        })
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")? as char;
                            code = code * 16 + d.to_digit(16).ok_or("bad \\u escape")?;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) => {
                    // Multi-byte UTF-8: copy the raw bytes through.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    self.pos = start + len;
                    let chunk = self
                        .bytes
                        .get(start..self.pos)
                        .ok_or("truncated UTF-8 sequence")?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|e| format!("invalid UTF-8: {e}"))?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<f64, String> {
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            return Ok(f64::NAN);
        }
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "invalid number".to_string())
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    // JSON has no NaN/Infinity; null is the conventional stand-in.
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Prints a title, the rows as an aligned table, and a JSON dump (one line)
/// for downstream processing.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    println!(
        "{:<14} {:<22} {:>14} {:<10}",
        "x", "series", "value", "unit"
    );
    for row in rows {
        println!(
            "{:<14} {:<22} {:>14.1} {:<10}",
            row.x, row.series, row.value, row.unit
        );
    }
    println!("JSON: {}", rows_to_json(rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_serialise() {
        let rows = vec![Row::new(100, "flick-kernel", 12345.6, "req/s")];
        let json = rows_to_json(&rows);
        assert!(json.contains("flick-kernel"));
        assert_eq!(
            json,
            r#"[{"x":"100","series":"flick-kernel","value":12345.6,"unit":"req/s"}]"#
        );
        print_table("test", &rows);
    }

    #[test]
    fn json_escapes_and_non_finite() {
        let rows = vec![Row::new("a\"b\n", "s\\t", f64::NAN, "u")];
        assert_eq!(
            rows_to_json(&rows),
            r#"[{"x":"a\"b\n","series":"s\\t","value":null,"unit":"u"}]"#
        );
    }

    #[test]
    fn rows_roundtrip_through_json() {
        let rows = vec![
            Row::new(256, "event", 18234.5, "req/s"),
            Row::new(256, "poll scans", 5.1e6, "polls/s"),
            Row::new("a\"b\n", "süß", -0.25, "u"),
        ];
        let parsed = rows_from_json(&rows_to_json(&rows)).unwrap();
        assert_eq!(parsed.len(), rows.len());
        for (a, b) in rows.iter().zip(&parsed) {
            assert_eq!(a.x, b.x);
            assert_eq!(a.series, b.series);
            assert_eq!(a.unit, b.unit);
            assert!((a.value - b.value).abs() < 1e-9);
        }
    }

    #[test]
    fn parse_handles_empty_null_and_errors() {
        assert!(rows_from_json("[]").unwrap().is_empty());
        assert!(rows_from_json("  [ ]").unwrap().is_empty());
        let parsed = rows_from_json(r#"[{"x":"1","series":"s","value":null,"unit":"u"}]"#).unwrap();
        assert!(parsed[0].value.is_nan());
        assert!(rows_from_json("{}").is_err());
        assert!(rows_from_json(r#"[{"x":"1"}]"#).is_err());
        assert!(rows_from_json(r#"[{"x":"1","series":"s","value":1,"unit":"u"}"#).is_err());
    }
}
