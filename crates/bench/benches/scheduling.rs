//! Criterion bench for Figure 7 (scheduling policies) plus the cooperative
//! timeslice ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flick_bench::{run_sharing_experiment, SharingExperiment};
use flick_runtime::SchedulingPolicy;
use std::time::Duration;

fn bench_scheduling(c: &mut Criterion) {
    let params = SharingExperiment {
        tasks_per_class: 10,
        items_per_task: 50,
        workers: 2,
    };
    let mut group = c.benchmark_group("scheduling_policies");
    for (label, policy) in [
        (
            "cooperative",
            SchedulingPolicy::Cooperative {
                timeslice: Duration::from_micros(50),
            },
        ),
        ("non-cooperative", SchedulingPolicy::NonCooperative),
        ("round-robin", SchedulingPolicy::RoundRobin),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, policy| {
            b.iter(|| run_sharing_experiment(*policy, &params))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("timeslice_ablation");
    for micros in [10u64, 100, 1000] {
        let policy = SchedulingPolicy::Cooperative {
            timeslice: Duration::from_micros(micros),
        };
        group.bench_with_input(BenchmarkId::from_parameter(micros), &policy, |b, policy| {
            b.iter(|| run_sharing_experiment(*policy, &params))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_scheduling
}
criterion_main!(benches);
