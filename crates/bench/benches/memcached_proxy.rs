//! Criterion bench for Figure 5 (Memcached proxy vs cores).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flick_bench::{run_memcached_experiment, MemcachedExperiment, MemcachedSystem};
use std::time::Duration;

fn bench_memcached(c: &mut Criterion) {
    let mut group = c.benchmark_group("memcached_proxy");
    for system in MemcachedSystem::all() {
        for cores in [1usize, 4] {
            let params = MemcachedExperiment {
                cores,
                clients: 16,
                backends: 2,
                duration: Duration::from_millis(200),
                ..Default::default()
            };
            let id = format!("{}-{}cores", system.label(), cores);
            group.bench_with_input(BenchmarkId::from_parameter(id), &system, |b, system| {
                b.iter(|| run_memcached_experiment(*system, &params))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_memcached
}
criterion_main!(benches);
