//! Ablation: per-worker FIFO queues with scavenging (the FLICK design)
//! versus a single worker (no parallelism) for a fixed batch of tasks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flick_runtime::scheduler::Scheduler;
use flick_runtime::task::TaskId;
use flick_runtime::tasks::SyntheticWorkTask;
use flick_runtime::{RuntimeMetrics, SchedulingPolicy};
use std::time::Duration;

fn run_batch(workers: usize) {
    let scheduler = Scheduler::start(
        workers,
        SchedulingPolicy::default(),
        RuntimeMetrics::new_shared(),
    );
    for i in 0..32u64 {
        let id = TaskId(i + 1);
        scheduler.register(
            id,
            Box::new(SyntheticWorkTask::new(format!("t{i}"), 50, 4096, None)),
        );
        scheduler.schedule(id);
    }
    assert!(scheduler.wait_idle(Duration::from_secs(30)));
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_workers");
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, workers| b.iter(|| run_batch(*workers)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_scheduler
}
criterion_main!(benches);
