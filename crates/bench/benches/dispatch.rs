//! Ablation: per-graph backend connections established fresh versus drawn
//! from the pre-established backend pool (DESIGN.md §6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flick_net::{SimNetwork, StackModel};
use flick_runtime::pool::BackendPool;
use std::sync::Arc;

fn checkout_loop(pool: &Arc<BackendPool>, n: usize) {
    for _ in 0..n {
        let conn = pool.checkout(0).expect("backend reachable");
        pool.checkin(0, conn);
    }
}

fn bench_dispatch(c: &mut Criterion) {
    let net = SimNetwork::new(StackModel::Kernel);
    let _listener = net.listen(9900).unwrap();
    let fresh = BackendPool::new(Arc::clone(&net), vec![9900], false);
    let pooled = BackendPool::new(Arc::clone(&net), vec![9900], true);
    let mut group = c.benchmark_group("backend_connections");
    group.bench_with_input(BenchmarkId::from_parameter("fresh"), &fresh, |b, pool| {
        b.iter(|| checkout_loop(pool, 16))
    });
    group.bench_with_input(BenchmarkId::from_parameter("pooled"), &pooled, |b, pool| {
        b.iter(|| checkout_loop(pool, 16))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(1)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_dispatch
}
criterion_main!(benches);
