//! Criterion bench for Figure 6 (Hadoop aggregation throughput).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flick_bench::{run_hadoop_experiment, HadoopExperiment};

fn bench_hadoop(c: &mut Criterion) {
    let mut group = c.benchmark_group("hadoop_aggregation");
    for word_len in [8usize, 16] {
        let params = HadoopExperiment {
            cores: 2,
            word_len,
            mappers: 2,
            bytes_per_mapper: 128 * 1024,
            link_bits_per_sec: None,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(word_len),
            &params,
            |b, params| b.iter(|| run_hadoop_experiment(params)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_hadoop
}
criterion_main!(benches);
