//! Dispatcher-backend ablation: request latency through a FLICK static web
//! service while 255 other connections sit idle.
//!
//! The poll dispatcher re-scans all 256 watched endpoints every
//! `poll_interval` and adds up to one tick of latency per request hop; the
//! event dispatcher blocks in `Poller::wait` and reacts immediately, so it
//! must be at least as fast — that is the acceptance bar of the readiness
//! layer (ISSUE 2), re-checked in CI by the `bench_guard` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flick_net::{Endpoint, SimNetwork, StackModel};
use flick_runtime::{DeployedService, DispatcherBackend, Platform, PlatformConfig, ServiceSpec};
use flick_services::http::StaticWebServerFactory;
use std::sync::Arc;
use std::time::Duration;

const CONNECTIONS: usize = 256;

struct Setup {
    // Holds the platform, service and idle connections alive for the
    // duration of the measurement.
    _platform: Platform,
    _service: DeployedService,
    _idle: Vec<Endpoint>,
    active: Endpoint,
}

fn setup(backend: DispatcherBackend) -> Setup {
    let net = SimNetwork::new(StackModel::Kernel);
    let platform = Platform::with_network(
        PlatformConfig {
            workers: 4,
            stack: StackModel::Kernel,
            dispatcher: backend,
            ..Default::default()
        },
        Arc::clone(&net),
    );
    let service = platform
        .deploy(ServiceSpec::new(
            "idle-web",
            8080,
            StaticWebServerFactory::new(&[b'x'; 137][..]),
        ))
        .expect("deploy static web service");
    let idle: Vec<Endpoint> = (1..CONNECTIONS)
        .map(|_| net.connect(8080).expect("idle client connects"))
        .collect();
    let active = net.connect(8080).expect("active client connects");
    // Let the dispatcher instantiate every graph before measuring.
    std::thread::sleep(Duration::from_millis(100));
    Setup {
        _platform: platform,
        _service: service,
        _idle: idle,
        active,
    }
}

fn one_request(conn: &Endpoint) {
    conn.write_all(b"GET /bench HTTP/1.1\r\nHost: b\r\n\r\n")
        .expect("request written");
    let mut response = Vec::with_capacity(256);
    let mut chunk = [0u8; 1024];
    loop {
        let n = conn
            .read_timeout(&mut chunk, Duration::from_secs(5))
            .expect("response arrives");
        response.extend_from_slice(&chunk[..n]);
        // The static body is the terminator: one full response received.
        if response.windows(4).any(|w| w == b"xxxx") {
            break;
        }
    }
}

fn bench_idle_connections(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatcher_backend_idle256");
    for backend in DispatcherBackend::all() {
        let setup = setup(backend);
        group.bench_with_input(
            BenchmarkId::from_parameter(backend.label()),
            &setup,
            |b, setup| b.iter(|| one_request(&setup.active)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_idle_connections
}
criterion_main!(benches);
