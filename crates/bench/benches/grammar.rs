//! Criterion benches for the grammar engine: full-message parsing versus
//! projection-specialised parsing (the DESIGN.md ablation), and
//! serialisation pass-through.
//!
//! The `projection_multikb` group is the large-skipped-field ablation: a
//! router-style projection over messages whose body grows to multi-KB
//! sizes. With the span-scan engine a projected parse touches only the
//! header — the body is neither UTF-8 validated nor copied (shared-buffer
//! parsing copies nothing at all) — so the projected/full gap widens with
//! body size, which is the paper's argument for projection.

use criterion::{criterion_group, criterion_main, Criterion};
use flick_grammar::model::{FieldKind, GrammarItem, LenExpr, UnitGrammar};
use flick_grammar::{http, memcached, GrammarCodec, Projection, WireCodec};

fn bench_grammar(c: &mut Criterion) {
    let codec = memcached::MemcachedCodec::new();
    let mut wire = Vec::new();
    codec
        .serialize(
            &memcached::request(memcached::opcode::GETK, b"user:12345", b"", &[7u8; 64]),
            &mut wire,
        )
        .unwrap();
    let projection = memcached::router_projection();
    let mut group = c.benchmark_group("grammar");
    group.bench_function("memcached_parse_full", |b| {
        b.iter(|| codec.parse(&wire, None).unwrap())
    });
    group.bench_function("memcached_parse_projected", |b| {
        b.iter(|| codec.parse(&wire, Some(&projection)).unwrap())
    });
    let http_codec = http::HttpCodec::new();
    let request = b"GET /index.html HTTP/1.1\r\nHost: bench\r\nConnection: keep-alive\r\n\r\n";
    group.bench_function("http_parse_request", |b| {
        b.iter(|| http_codec.parse(request, None).unwrap())
    });
    group.finish();
}

/// A post-like unit: small routed header, textual body of variable size —
/// the shape where the paper's projection argument has the most to gain.
fn post_grammar() -> GrammarCodec {
    let grammar = UnitGrammar::new("post")
        .item(GrammarItem::field("tag", FieldKind::UInt { width: 2 }))
        .item(GrammarItem::field("body_len", FieldKind::UInt { width: 4 }))
        .item(GrammarItem::field(
            "body",
            FieldKind::Str {
                length: LenExpr::field("body_len"),
            },
        ))
        .ser_rule("body_len", LenExpr::LenOf("body".into()));
    GrammarCodec::new(grammar).unwrap()
}

fn bench_projection_multikb(c: &mut Criterion) {
    let codec = post_grammar();
    // The router projection: the program reads the tag, never the body.
    let projection = Projection::of(["tag"]);
    let mut group = c.benchmark_group("projection_multikb");
    for body_kb in [1usize, 4, 16] {
        let mut wire = Vec::new();
        wire.extend_from_slice(&[0, 7]); // tag
        let body = vec![b'x'; body_kb * 1024];
        wire.extend_from_slice(&(body.len() as u32).to_be_bytes());
        wire.extend_from_slice(&body);
        let shared = bytes::Bytes::from(wire.clone());
        group.bench_function(format!("full_{body_kb}kb"), |b| {
            b.iter(|| codec.parse(&wire, None).unwrap())
        });
        group.bench_function(format!("projected_{body_kb}kb"), |b| {
            b.iter(|| codec.parse(&wire, Some(&projection)).unwrap())
        });
        group.bench_function(format!("full_shared_{body_kb}kb"), |b| {
            b.iter(|| codec.parse_shared(&shared, None).unwrap())
        });
        group.bench_function(format!("projected_shared_{body_kb}kb"), |b| {
            b.iter(|| codec.parse_shared(&shared, Some(&projection)).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(1)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_grammar, bench_projection_multikb
}
criterion_main!(benches);
