//! Criterion benches for the grammar engine: full-message parsing versus
//! projection-specialised parsing (the DESIGN.md ablation), and
//! serialisation pass-through.

use criterion::{criterion_group, criterion_main, Criterion};
use flick_grammar::{http, memcached, WireCodec};

fn bench_grammar(c: &mut Criterion) {
    let codec = memcached::MemcachedCodec::new();
    let mut wire = Vec::new();
    codec
        .serialize(
            &memcached::request(memcached::opcode::GETK, b"user:12345", b"", &[7u8; 64]),
            &mut wire,
        )
        .unwrap();
    let projection = memcached::router_projection();
    let mut group = c.benchmark_group("grammar");
    group.bench_function("memcached_parse_full", |b| {
        b.iter(|| codec.parse(&wire, None).unwrap())
    });
    group.bench_function("memcached_parse_projected", |b| {
        b.iter(|| codec.parse(&wire, Some(&projection)).unwrap())
    });
    let http_codec = http::HttpCodec::new();
    let request = b"GET /index.html HTTP/1.1\r\nHost: bench\r\nConnection: keep-alive\r\n\r\n";
    group.bench_function("http_parse_request", |b| {
        b.iter(|| http_codec.parse(request, None).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(1)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_grammar
}
criterion_main!(benches);
