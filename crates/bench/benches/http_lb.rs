//! Criterion bench for Figure 4 (HTTP load balancer), persistent and
//! non-persistent connections at a fixed concurrency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flick_bench::{run_http_experiment, HttpExperiment, HttpSystem};
use std::time::Duration;

fn bench_http_lb(c: &mut Criterion) {
    for persistent in [true, false] {
        let name = if persistent {
            "http_lb_persistent"
        } else {
            "http_lb_non_persistent"
        };
        let mut group = c.benchmark_group(name);
        for system in HttpSystem::all() {
            let params = HttpExperiment {
                concurrency: 8,
                persistent,
                duration: Duration::from_millis(200),
                workers: 2,
                backends: 2,
            };
            group.bench_with_input(
                BenchmarkId::from_parameter(system.label()),
                &system,
                |b, system| b.iter(|| run_http_experiment(*system, &params)),
            );
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_http_lb
}
criterion_main!(benches);
