//! Criterion bench for the §6.3 static web-server experiment (one point per
//! system at a fixed concurrency).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flick_bench::{run_http_experiment, HttpExperiment, HttpSystem};
use std::time::Duration;

fn bench_webserver(c: &mut Criterion) {
    let mut group = c.benchmark_group("webserver_throughput");
    group.sample_size(10);
    for system in HttpSystem::all() {
        let params = HttpExperiment {
            concurrency: 8,
            persistent: true,
            duration: Duration::from_millis(200),
            workers: 2,
            backends: 0,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(system.label()),
            &system,
            |b, system| b.iter(|| run_http_experiment(*system, &params)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_webserver
}
criterion_main!(benches);
