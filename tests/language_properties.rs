//! Property-based tests over the FLICK front end and the grammar engine.

use flick::grammar::{hadoop, memcached, ParseOutcome, WireCodec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated Memcached request round-trips through the grammar
    /// engine: serialise → parse yields the same key/value/opcode.
    #[test]
    fn memcached_roundtrip(key in "[a-z0-9:]{0,40}", value in proptest::collection::vec(any::<u8>(), 0..200), op in 0u64..32) {
        let codec = memcached::MemcachedCodec::new();
        let msg = memcached::request(op, key.as_bytes(), b"", &value);
        let mut wire = Vec::new();
        codec.serialize(&msg, &mut wire).unwrap();
        match codec.parse(&wire, None).unwrap() {
            ParseOutcome::Complete { message, consumed } => {
                prop_assert_eq!(consumed, wire.len());
                prop_assert_eq!(message.str_field("key").unwrap_or(""), key.as_str());
                prop_assert_eq!(message.bytes_field("value").unwrap_or(&[]), &value[..]);
                prop_assert_eq!(message.uint_field("opcode"), Some(op));
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// Truncating a valid message never produces a bogus Complete result:
    /// the parser reports Incomplete (or a malformed error for a damaged
    /// fixed header), never a wrong message.
    #[test]
    fn memcached_truncation_is_detected(key in "[a-z]{1,20}", cut in 1usize..20) {
        let codec = memcached::MemcachedCodec::new();
        let msg = memcached::request(memcached::opcode::GETK, key.as_bytes(), b"", b"value");
        let mut wire = Vec::new();
        codec.serialize(&msg, &mut wire).unwrap();
        let cut = cut.min(wire.len() - 1);
        let truncated = &wire[..wire.len() - cut];
        match codec.parse(truncated, None) {
            Ok(ParseOutcome::Incomplete { .. }) | Err(_) => {}
            Ok(ParseOutcome::Complete { consumed, .. }) => {
                prop_assert!(consumed <= truncated.len());
                // A complete parse of a truncated buffer can only happen if
                // the truncation removed a zero-length tail, which cannot
                // occur here because value is non-empty.
                prop_assert!(false, "truncated message parsed as complete");
            }
        }
    }

    /// Hadoop kv batches round-trip in order.
    #[test]
    fn hadoop_batch_roundtrip(words in proptest::collection::vec("[a-z]{1,16}", 1..20)) {
        let codec = hadoop::HadoopKvCodec::new();
        let records: Vec<_> = words.iter().enumerate().map(|(i, w)| hadoop::count_kv(w, i as u64 + 1)).collect();
        let wire = hadoop::serialize_batch(&codec, &records).unwrap();
        let parsed = hadoop::parse_batch(&codec, &wire).unwrap();
        prop_assert_eq!(parsed.len(), records.len());
        for (p, w) in parsed.iter().zip(words.iter()) {
            prop_assert_eq!(p.str_field("key").unwrap(), w.as_str());
        }
    }

    /// The FLICK front end never panics on arbitrary printable input.
    #[test]
    fn parser_never_panics(src in "[ -~\n]{0,200}") {
        let _ = flick::lang::parse(&src);
    }

    /// Valid programs with a varying number of fields type-check, and the
    /// field count is preserved in the typed output.
    #[test]
    fn typecheck_preserves_field_count(n in 1usize..8) {
        let mut src = String::from("type rec: record\n");
        for i in 0..n {
            src.push_str(&format!("  f{i} : integer\n"));
        }
        src.push_str("\nproc P: (rec/rec c)\n  c => c\n");
        let typed = flick::lang::compile_to_ast(&src).unwrap();
        prop_assert_eq!(typed.record("rec").unwrap().fields.len(), n);
    }
}
