//! Property-based tests over the FLICK front end and the grammar engine.

use flick::grammar::{hadoop, memcached, ParseOutcome, WireCodec};
use flick::lang::ast::{Block, Expr, ExprKind, Stmt};
use flick::lang::types::Type;
use proptest::prelude::*;

/// Counts statements of one construct kind anywhere in a block.
fn count_stmts(block: &Block, pred: &dyn Fn(&Stmt) -> bool) -> usize {
    let mut count = 0;
    for stmt in &block.stmts {
        if pred(stmt) {
            count += 1;
        }
        match stmt {
            Stmt::If { then, els, .. } => {
                count += count_stmts(then, pred);
                if let Some(els) = els {
                    count += count_stmts(els, pred);
                }
            }
            Stmt::For { body, .. } => {
                count += count_stmts(body, pred);
            }
            _ => {}
        }
    }
    count
}

/// Counts `Call` expressions anywhere inside an expression tree.
fn count_calls(expr: &Expr) -> usize {
    match &expr.kind {
        ExprKind::Call { args, .. } => 1 + args.iter().map(count_calls).sum::<usize>(),
        ExprKind::Binary { lhs, rhs, .. } => count_calls(lhs) + count_calls(rhs),
        ExprKind::Unary { operand, .. } => count_calls(operand),
        ExprKind::Field(inner, _) => count_calls(inner),
        ExprKind::Index(base, index) => count_calls(base) + count_calls(index),
        _ => 0,
    }
}

/// Counts `Call` expressions in every expression position of a block.
fn count_calls_in_block(block: &Block) -> usize {
    block
        .stmts
        .iter()
        .map(|stmt| match stmt {
            Stmt::Expr { expr, .. } => count_calls(expr),
            Stmt::Let { value, .. } => count_calls(value),
            Stmt::Assign { target, value, .. } => count_calls(target) + count_calls(value),
            _ => 0,
        })
        .sum()
}

/// Renders a chain of `depth` nested `if`/`else` statements, each arm one
/// indentation level deeper (the FLICK lexer is indentation-aware, so this
/// also exercises deep indent tracking).
fn nested_if_source(depth: usize) -> String {
    let mut src = String::from("fun f: (x: integer) -> (integer)\n");
    for level in 0..depth {
        let ind = "  ".repeat(level + 1);
        src.push_str(&format!("{ind}if x > {level}:\n"));
        if level + 1 == depth {
            src.push_str(&format!("{ind}  x + {depth}\n"));
        }
    }
    // Close every level with an else arm, innermost first.
    for level in (0..depth).rev() {
        let ind = "  ".repeat(level + 1);
        src.push_str(&format!("{ind}else:\n"));
        src.push_str(&format!("{ind}  x - {level}\n"));
    }
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated Memcached request round-trips through the grammar
    /// engine: serialise → parse yields the same key/value/opcode.
    #[test]
    fn memcached_roundtrip(key in "[a-z0-9:]{0,40}", value in proptest::collection::vec(any::<u8>(), 0..200), op in 0u64..32) {
        let codec = memcached::MemcachedCodec::new();
        let msg = memcached::request(op, key.as_bytes(), b"", &value);
        let mut wire = Vec::new();
        codec.serialize(&msg, &mut wire).unwrap();
        match codec.parse(&wire, None).unwrap() {
            ParseOutcome::Complete { message, consumed } => {
                prop_assert_eq!(consumed, wire.len());
                prop_assert_eq!(message.str_field("key").unwrap_or(""), key.as_str());
                prop_assert_eq!(message.bytes_field("value").unwrap_or(&[]), &value[..]);
                prop_assert_eq!(message.uint_field("opcode"), Some(op));
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// Truncating a valid message never produces a bogus Complete result:
    /// the parser reports Incomplete (or a malformed error for a damaged
    /// fixed header), never a wrong message.
    #[test]
    fn memcached_truncation_is_detected(key in "[a-z]{1,20}", cut in 1usize..20) {
        let codec = memcached::MemcachedCodec::new();
        let msg = memcached::request(memcached::opcode::GETK, key.as_bytes(), b"", b"value");
        let mut wire = Vec::new();
        codec.serialize(&msg, &mut wire).unwrap();
        let cut = cut.min(wire.len() - 1);
        let truncated = &wire[..wire.len() - cut];
        match codec.parse(truncated, None) {
            Ok(ParseOutcome::Incomplete { .. }) | Err(_) => {}
            Ok(ParseOutcome::Complete { consumed, .. }) => {
                prop_assert!(consumed <= truncated.len());
                // A complete parse of a truncated buffer can only happen if
                // the truncation removed a zero-length tail, which cannot
                // occur here because value is non-empty.
                prop_assert!(false, "truncated message parsed as complete");
            }
        }
    }

    /// Hadoop kv batches round-trip in order.
    #[test]
    fn hadoop_batch_roundtrip(words in proptest::collection::vec("[a-z]{1,16}", 1..20)) {
        let codec = hadoop::HadoopKvCodec::new();
        let records: Vec<_> = words.iter().enumerate().map(|(i, w)| hadoop::count_kv(w, i as u64 + 1)).collect();
        let wire = hadoop::serialize_batch(&codec, &records).unwrap();
        let parsed = hadoop::parse_batch(&codec, &wire).unwrap();
        prop_assert_eq!(parsed.len(), records.len());
        for (p, w) in parsed.iter().zip(words.iter()) {
            prop_assert_eq!(p.str_field("key").unwrap(), w.as_str());
        }
    }

    /// The FLICK front end never panics on arbitrary printable input.
    #[test]
    fn parser_never_panics(src in "[ -~\n]{0,200}") {
        let _ = flick::lang::parse(&src);
    }

    /// Construct coverage: `if`/`else` (Stmt::If). Arbitrarily deep
    /// nested conditionals parse, preserve their nesting depth in the
    /// AST, and type-check to the integer every arm produces.
    #[test]
    fn nested_if_else_typechecks_at_any_depth(depth in 1usize..9) {
        let src = nested_if_source(depth);
        let parsed = flick::lang::parse(&src).expect("nested if parses");
        let ifs = count_stmts(
            &parsed.functions[0].body,
            &|stmt| matches!(stmt, Stmt::If { .. }),
        );
        prop_assert_eq!(ifs, depth, "source:\n{}", src);
        let typed = flick::lang::compile_to_ast(&src).expect("nested if type-checks");
        prop_assert_eq!(&typed.function("f").unwrap().ret, &Type::Int);
    }

    /// Construct coverage: `for` loops (Stmt::For). A function with any
    /// number of bounded loops over a list parameter parses with the
    /// right loop count and type-checks (the loop variable is bound to
    /// the element type, the final `len` call returns an integer).
    #[test]
    fn for_loops_over_lists_typecheck(loops in 1usize..7) {
        let mut src = String::from("fun f: (xs: [integer]) -> (integer)\n");
        for i in 0..loops {
            src.push_str(&format!("  for x{i} in xs:\n    let y{i} = x{i} + 1\n"));
        }
        src.push_str("  len(xs)\n");
        let parsed = flick::lang::parse(&src).expect("for loops parse");
        let fors = count_stmts(
            &parsed.functions[0].body,
            &|stmt| matches!(stmt, Stmt::For { .. }),
        );
        prop_assert_eq!(fors, loops, "source:\n{}", src);
        let typed = flick::lang::compile_to_ast(&src).expect("for loops type-check");
        prop_assert_eq!(&typed.function("f").unwrap().ret, &Type::Int);
    }

    /// Construct coverage: nested function calls (ExprKind::Call). A call
    /// chain `inc(inc(...inc(x)...))` of any depth parses with the right
    /// call count and type-checks — the callee's return type feeds the
    /// next caller's parameter type at every level.
    #[test]
    fn nested_function_calls_typecheck_at_any_depth(depth in 1usize..10) {
        let mut call = String::from("x");
        for _ in 0..depth {
            call = format!("inc({call})");
        }
        let src = format!(
            "fun inc: (x: integer) -> (integer)\n  x + 1\n\n\
             fun apply: (x: integer) -> (integer)\n  {call}\n"
        );
        let parsed = flick::lang::parse(&src).expect("nested calls parse");
        let apply = parsed
            .functions
            .iter()
            .find(|f| f.name == "apply")
            .expect("apply parsed");
        prop_assert_eq!(count_calls_in_block(&apply.body), depth, "source:\n{}", src);
        let typed = flick::lang::compile_to_ast(&src).expect("nested calls type-check");
        prop_assert_eq!(&typed.function("apply").unwrap().ret, &Type::Int);
    }

    /// Construct coverage: `global` declarations (Stmt::Global) and
    /// dictionary assignment (Stmt::Assign through an Index target). A
    /// process threading any number of global dictionaries through a
    /// pipeline of cache-stash stages parses with the right global and
    /// assignment counts and type-checks.
    #[test]
    fn global_dicts_and_assignments_typecheck(n in 1usize..6) {
        let mut src = String::from("type cmd: record\n  key : string\n\nproc P: (cmd/cmd c)\n");
        for i in 0..n {
            src.push_str(&format!("  global g{i} := empty_dict\n"));
        }
        let stages: Vec<String> = (0..n).map(|i| format!("stash{i}(g{i})")).collect();
        src.push_str(&format!("  c => {} => c\n", stages.join(" => ")));
        for i in 0..n {
            src.push_str(&format!(
                "\nfun stash{i}: (cache: ref dict<string*cmd>, req: cmd) -> (cmd)\n  \
                 cache[req.key] := req\n  req\n"
            ));
        }
        let parsed = flick::lang::parse(&src).expect("globals parse");
        let proc_ = parsed.processes.first().expect("process parsed");
        let globals = count_stmts(&proc_.body, &|stmt| matches!(stmt, Stmt::Global { .. }));
        prop_assert_eq!(globals, n, "source:\n{}", src);
        for i in 0..n {
            let stash = parsed
                .functions
                .iter()
                .find(|f| f.name == format!("stash{i}"))
                .expect("stash parsed");
            let assigns = count_stmts(&stash.body, &|stmt| matches!(stmt, Stmt::Assign { .. }));
            prop_assert_eq!(assigns, 1, "stash{} source:\n{}", i, src);
        }
        flick::lang::compile_to_ast(&src).expect("globals type-check");
    }

    /// Valid programs with a varying number of fields type-check, and the
    /// field count is preserved in the typed output.
    #[test]
    fn typecheck_preserves_field_count(n in 1usize..8) {
        let mut src = String::from("type rec: record\n");
        for i in 0..n {
            src.push_str(&format!("  f{i} : integer\n"));
        }
        src.push_str("\nproc P: (rec/rec c)\n  c => c\n");
        let typed = flick::lang::compile_to_ast(&src).unwrap();
        prop_assert_eq!(typed.record("rec").unwrap().fields.len(), n);
    }
}
