//! Property-based tests over the FLICK front end and the grammar engine.

use flick::grammar::{hadoop, memcached, ParseOutcome, WireCodec};
use flick::lang::ast::{Block, Expr, ExprKind, Stmt};
use flick::lang::types::Type;
use proptest::prelude::*;

/// Counts statements of one construct kind anywhere in a block.
fn count_stmts(block: &Block, pred: &dyn Fn(&Stmt) -> bool) -> usize {
    let mut count = 0;
    for stmt in &block.stmts {
        if pred(stmt) {
            count += 1;
        }
        match stmt {
            Stmt::If { then, els, .. } => {
                count += count_stmts(then, pred);
                if let Some(els) = els {
                    count += count_stmts(els, pred);
                }
            }
            Stmt::For { body, .. } => {
                count += count_stmts(body, pred);
            }
            _ => {}
        }
    }
    count
}

/// Counts `Call` expressions anywhere inside an expression tree.
fn count_calls(expr: &Expr) -> usize {
    match &expr.kind {
        ExprKind::Call { args, .. } => 1 + args.iter().map(count_calls).sum::<usize>(),
        ExprKind::Binary { lhs, rhs, .. } => count_calls(lhs) + count_calls(rhs),
        ExprKind::Unary { operand, .. } => count_calls(operand),
        ExprKind::Field(inner, _) => count_calls(inner),
        ExprKind::Index(base, index) => count_calls(base) + count_calls(index),
        _ => 0,
    }
}

/// Counts `Call` expressions in every expression position of a block.
fn count_calls_in_block(block: &Block) -> usize {
    block
        .stmts
        .iter()
        .map(|stmt| match stmt {
            Stmt::Expr { expr, .. } => count_calls(expr),
            Stmt::Let { value, .. } => count_calls(value),
            Stmt::Assign { target, value, .. } => count_calls(target) + count_calls(value),
            _ => 0,
        })
        .sum()
}

/// Renders a chain of `depth` nested `if`/`else` statements, each arm one
/// indentation level deeper (the FLICK lexer is indentation-aware, so this
/// also exercises deep indent tracking).
fn nested_if_source(depth: usize) -> String {
    let mut src = String::from("fun f: (x: integer) -> (integer)\n");
    for level in 0..depth {
        let ind = "  ".repeat(level + 1);
        src.push_str(&format!("{ind}if x > {level}:\n"));
        if level + 1 == depth {
            src.push_str(&format!("{ind}  x + {depth}\n"));
        }
    }
    // Close every level with an else arm, innermost first.
    for level in (0..depth).rev() {
        let ind = "  ".repeat(level + 1);
        src.push_str(&format!("{ind}else:\n"));
        src.push_str(&format!("{ind}  x - {level}\n"));
    }
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated Memcached request round-trips through the grammar
    /// engine: serialise → parse yields the same key/value/opcode.
    #[test]
    fn memcached_roundtrip(key in "[a-z0-9:]{0,40}", value in proptest::collection::vec(any::<u8>(), 0..200), op in 0u64..32) {
        let codec = memcached::MemcachedCodec::new();
        let msg = memcached::request(op, key.as_bytes(), b"", &value);
        let mut wire = Vec::new();
        codec.serialize(&msg, &mut wire).unwrap();
        match codec.parse(&wire, None).unwrap() {
            ParseOutcome::Complete { message, consumed } => {
                prop_assert_eq!(consumed, wire.len());
                prop_assert_eq!(message.str_field("key").unwrap_or(""), key.as_str());
                prop_assert_eq!(message.bytes_field("value").unwrap_or(&[]), &value[..]);
                prop_assert_eq!(message.uint_field("opcode"), Some(op));
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// Truncating a valid message never produces a bogus Complete result:
    /// the parser reports Incomplete (or a malformed error for a damaged
    /// fixed header), never a wrong message.
    #[test]
    fn memcached_truncation_is_detected(key in "[a-z]{1,20}", cut in 1usize..20) {
        let codec = memcached::MemcachedCodec::new();
        let msg = memcached::request(memcached::opcode::GETK, key.as_bytes(), b"", b"value");
        let mut wire = Vec::new();
        codec.serialize(&msg, &mut wire).unwrap();
        let cut = cut.min(wire.len() - 1);
        let truncated = &wire[..wire.len() - cut];
        match codec.parse(truncated, None) {
            Ok(ParseOutcome::Incomplete { .. }) | Err(_) => {}
            Ok(ParseOutcome::Complete { consumed, .. }) => {
                prop_assert!(consumed <= truncated.len());
                // A complete parse of a truncated buffer can only happen if
                // the truncation removed a zero-length tail, which cannot
                // occur here because value is non-empty.
                prop_assert!(false, "truncated message parsed as complete");
            }
        }
    }

    /// Hadoop kv batches round-trip in order.
    #[test]
    fn hadoop_batch_roundtrip(words in proptest::collection::vec("[a-z]{1,16}", 1..20)) {
        let codec = hadoop::HadoopKvCodec::new();
        let records: Vec<_> = words.iter().enumerate().map(|(i, w)| hadoop::count_kv(w, i as u64 + 1)).collect();
        let wire = hadoop::serialize_batch(&codec, &records).unwrap();
        let parsed = hadoop::parse_batch(&codec, &wire).unwrap();
        prop_assert_eq!(parsed.len(), records.len());
        for (p, w) in parsed.iter().zip(words.iter()) {
            prop_assert_eq!(p.str_field("key").unwrap(), w.as_str());
        }
    }

    /// The FLICK front end never panics on arbitrary printable input.
    #[test]
    fn parser_never_panics(src in "[ -~\n]{0,200}") {
        let _ = flick::lang::parse(&src);
    }

    /// Construct coverage: `if`/`else` (Stmt::If). Arbitrarily deep
    /// nested conditionals parse, preserve their nesting depth in the
    /// AST, and type-check to the integer every arm produces.
    #[test]
    fn nested_if_else_typechecks_at_any_depth(depth in 1usize..9) {
        let src = nested_if_source(depth);
        let parsed = flick::lang::parse(&src).expect("nested if parses");
        let ifs = count_stmts(
            &parsed.functions[0].body,
            &|stmt| matches!(stmt, Stmt::If { .. }),
        );
        prop_assert_eq!(ifs, depth, "source:\n{}", src);
        let typed = flick::lang::compile_to_ast(&src).expect("nested if type-checks");
        prop_assert_eq!(&typed.function("f").unwrap().ret, &Type::Int);
    }

    /// Construct coverage: `for` loops (Stmt::For). A function with any
    /// number of bounded loops over a list parameter parses with the
    /// right loop count and type-checks (the loop variable is bound to
    /// the element type, the final `len` call returns an integer).
    #[test]
    fn for_loops_over_lists_typecheck(loops in 1usize..7) {
        let mut src = String::from("fun f: (xs: [integer]) -> (integer)\n");
        for i in 0..loops {
            src.push_str(&format!("  for x{i} in xs:\n    let y{i} = x{i} + 1\n"));
        }
        src.push_str("  len(xs)\n");
        let parsed = flick::lang::parse(&src).expect("for loops parse");
        let fors = count_stmts(
            &parsed.functions[0].body,
            &|stmt| matches!(stmt, Stmt::For { .. }),
        );
        prop_assert_eq!(fors, loops, "source:\n{}", src);
        let typed = flick::lang::compile_to_ast(&src).expect("for loops type-check");
        prop_assert_eq!(&typed.function("f").unwrap().ret, &Type::Int);
    }

    /// Construct coverage: nested function calls (ExprKind::Call). A call
    /// chain `inc(inc(...inc(x)...))` of any depth parses with the right
    /// call count and type-checks — the callee's return type feeds the
    /// next caller's parameter type at every level.
    #[test]
    fn nested_function_calls_typecheck_at_any_depth(depth in 1usize..10) {
        let mut call = String::from("x");
        for _ in 0..depth {
            call = format!("inc({call})");
        }
        let src = format!(
            "fun inc: (x: integer) -> (integer)\n  x + 1\n\n\
             fun apply: (x: integer) -> (integer)\n  {call}\n"
        );
        let parsed = flick::lang::parse(&src).expect("nested calls parse");
        let apply = parsed
            .functions
            .iter()
            .find(|f| f.name == "apply")
            .expect("apply parsed");
        prop_assert_eq!(count_calls_in_block(&apply.body), depth, "source:\n{}", src);
        let typed = flick::lang::compile_to_ast(&src).expect("nested calls type-check");
        prop_assert_eq!(&typed.function("apply").unwrap().ret, &Type::Int);
    }

    /// Construct coverage: `global` declarations (Stmt::Global) and
    /// dictionary assignment (Stmt::Assign through an Index target). A
    /// process threading any number of global dictionaries through a
    /// pipeline of cache-stash stages parses with the right global and
    /// assignment counts and type-checks.
    #[test]
    fn global_dicts_and_assignments_typecheck(n in 1usize..6) {
        let mut src = String::from("type cmd: record\n  key : string\n\nproc P: (cmd/cmd c)\n");
        for i in 0..n {
            src.push_str(&format!("  global g{i} := empty_dict\n"));
        }
        let stages: Vec<String> = (0..n).map(|i| format!("stash{i}(g{i})")).collect();
        src.push_str(&format!("  c => {} => c\n", stages.join(" => ")));
        for i in 0..n {
            src.push_str(&format!(
                "\nfun stash{i}: (cache: ref dict<string*cmd>, req: cmd) -> (cmd)\n  \
                 cache[req.key] := req\n  req\n"
            ));
        }
        let parsed = flick::lang::parse(&src).expect("globals parse");
        let proc_ = parsed.processes.first().expect("process parsed");
        let globals = count_stmts(&proc_.body, &|stmt| matches!(stmt, Stmt::Global { .. }));
        prop_assert_eq!(globals, n, "source:\n{}", src);
        for i in 0..n {
            let stash = parsed
                .functions
                .iter()
                .find(|f| f.name == format!("stash{i}"))
                .expect("stash parsed");
            let assigns = count_stmts(&stash.body, &|stmt| matches!(stmt, Stmt::Assign { .. }));
            prop_assert_eq!(assigns, 1, "stash{} source:\n{}", i, src);
        }
        flick::lang::compile_to_ast(&src).expect("globals type-check");
    }

    /// Valid programs with a varying number of fields type-check, and the
    /// field count is preserved in the typed output.
    #[test]
    fn typecheck_preserves_field_count(n in 1usize..8) {
        let mut src = String::from("type rec: record\n");
        for i in 0..n {
            src.push_str(&format!("  f{i} : integer\n"));
        }
        src.push_str("\nproc P: (rec/rec c)\n  c => c\n");
        let typed = flick::lang::compile_to_ast(&src).unwrap();
        prop_assert_eq!(typed.record("rec").unwrap().fields.len(), n);
    }
}

// ---------------------------------------------------------------------------
// Differential execution: tree-walking interpreter ≡ bytecode VM
// ---------------------------------------------------------------------------
//
// The proptest shim has no recursive combinator strategies (`prop_oneof`,
// `prop_recursive`), so differential programs are derived from
// proptest-supplied byte vectors through a small hand-rolled generator: the
// byte stream steers a grammar of type-correct integer expressions, and the
// generated function is executed under both engines with identical
// arguments. Results, emitted sends and errors (base message plus the
// located function name) must agree exactly.

use flick::compiler::bytecode;
use flick::compiler::error::split_located;
use flick::compiler::interp::{CollectSink, Interpreter, RtVal};
use flick::compiler::vm::Vm;
use flick::grammar::{Message, MsgValue};
use flick::runtime::Value;

/// One engine run: final value (or rendered error) plus every
/// `(channel, value)` send the function performed.
type EngineOutcome = (Result<Value, String>, Vec<(usize, Value)>);

/// Runs function `fn_name` of `src` under both the tree-walking
/// interpreter and the bytecode VM with identical arguments.
fn run_differential(src: &str, fn_name: &str, args: Vec<RtVal>) -> (EngineOutcome, EngineOutcome) {
    let typed = flick::lang::compile_to_ast(src)
        .unwrap_or_else(|e| panic!("generated program must type-check: {e}\nsource:\n{src}"));
    let program = flick::compiler::ir::lower(&typed, "P")
        .unwrap_or_else(|e| panic!("generated program must lower: {e}\nsource:\n{src}"));
    let compiled = bytecode::compile(&program);
    let index = program
        .functions
        .iter()
        .position(|f| f.name == fn_name)
        .unwrap_or_else(|| panic!("function `{fn_name}` not lowered\nsource:\n{src}"));

    let mut interp_sink = CollectSink::default();
    let interp_result = Interpreter::new(&program)
        .call_function(index, args.clone(), &mut interp_sink)
        .and_then(RtVal::into_value);

    let mut cache = compiled.field_offsets.clone();
    let mut vm_sink = CollectSink::default();
    let vm_result = Vm::new(&compiled, &mut cache)
        .call_function(index, args, &mut vm_sink)
        .and_then(RtVal::into_value);

    (
        (interp_result.map_err(|e| e.to_string()), interp_sink.sent),
        (vm_result.map_err(|e| e.to_string()), vm_sink.sent),
    )
}

/// Extracts the `fn `name`` prefix of a diagnostic location (the part
/// before the engine-specific `stmt N` / `pc N` cursor).
fn located_function(location: &str) -> &str {
    location.split(',').next().unwrap_or(location).trim()
}

/// Asserts both engines produced the same outcome: identical sends, and
/// either identical values or errors with the same base message whose
/// locations name the same innermost function.
fn assert_engines_agree(src: &str, fn_name: &str, args: Vec<RtVal>) {
    let ((interp, interp_sent), (vm, vm_sent)) = run_differential(src, fn_name, args);
    assert_eq!(interp_sent, vm_sent, "sends diverge\nsource:\n{src}");
    match (&interp, &vm) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "results diverge\nsource:\n{src}"),
        (Err(a), Err(b)) => {
            let (a_base, a_loc) = split_located(a);
            let (b_base, b_loc) = split_located(b);
            assert_eq!(a_base, b_base, "error bases diverge\nsource:\n{src}");
            let a_loc = a_loc
                .unwrap_or_else(|| panic!("interp error lacks a location: {a}\nsource:\n{src}"));
            let b_loc =
                b_loc.unwrap_or_else(|| panic!("vm error lacks a location: {b}\nsource:\n{src}"));
            assert!(
                a_loc.contains("fn `") && b_loc.contains("fn `"),
                "locations do not name a function: interp `{a_loc}` vm `{b_loc}`\nsource:\n{src}"
            );
            assert_eq!(
                located_function(a_loc),
                located_function(b_loc),
                "engines blame different functions\nsource:\n{src}"
            );
        }
        _ => panic!("engines disagree on success: interp={interp:?} vm={vm:?}\nsource:\n{src}"),
    }
}

/// A cursor over a proptest-supplied byte vector; exhausted streams repeat
/// a fixed byte so generation always terminates deterministically.
struct ByteGen<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl ByteGen<'_> {
    fn next(&mut self) -> u8 {
        let b = self.bytes.get(self.pos).copied().unwrap_or(7);
        self.pos += 1;
        b
    }
}

/// Renders a type-correct integer expression over `vars`, at most `depth`
/// operator levels deep. Depth is capped at 2 by callers so products of
/// mod-bounded variables stay far below `i64::MAX` (debug builds panic on
/// overflow, and both engines use plain arithmetic).
fn gen_int_expr(g: &mut ByteGen, vars: &[&str], depth: usize) -> String {
    let choice = g.next();
    if depth == 0 || choice < 96 {
        return if choice % 2 == 0 {
            format!("{}", i64::from(g.next()) - 128)
        } else {
            vars[g.next() as usize % vars.len()].to_string()
        };
    }
    let op = match choice % 6 {
        0 => "+",
        1 => "-",
        2 => "*",
        3 => "/",
        4 => "mod",
        _ => {
            return format!("(-{})", gen_int_expr(g, vars, depth - 1));
        }
    };
    format!(
        "({} {} {})",
        gen_int_expr(g, vars, depth - 1),
        op,
        gen_int_expr(g, vars, depth - 1)
    )
}

/// Renders a boolean comparison between two shallow integer expressions.
fn gen_condition(g: &mut ByteGen, vars: &[&str]) -> String {
    let op = ["=", "<>", "<", ">", "<=", ">="][g.next() as usize % 6];
    format!(
        "{} {} {}",
        gen_int_expr(g, vars, 1),
        op,
        gen_int_expr(g, vars, 1)
    )
}

/// Builds a type-correct FLICK program whose `main_f` exercises
/// let-bindings, local reassignment, statement- and tail-position
/// `if`/`else`, a `for` accumulation loop, a nested helper call, and the
/// `/` and `mod` error arms — all shaped by the byte stream. Every
/// accumulator is re-bounded with `mod` so debug-build arithmetic cannot
/// overflow regardless of the generated shape.
fn gen_differential_program(bytes: &[u8]) -> String {
    let g = &mut ByteGen { bytes, pos: 0 };
    let helper_tail = gen_int_expr(g, &["a", "b"], 2);
    let seed = gen_int_expr(g, &["x", "y"], 2);
    let step = gen_int_expr(g, &["x", "y", "v", "acc"], 2);
    let cond = gen_condition(g, &["x", "y", "acc"]);
    let then_arg = gen_int_expr(g, &["x", "y", "acc"], 2);
    let else_arg = gen_int_expr(g, &["x", "y", "acc"], 2);
    let tail_cond = gen_condition(g, &["x", "acc"]);
    let tail_then = gen_int_expr(g, &["x", "y", "acc"], 2);
    let tail_else = gen_int_expr(g, &["x", "y", "acc"], 2);
    format!(
        "type cmd: record\n  key : string\n\n\
         proc P: (cmd/cmd c)\n  c => c\n\n\
         fun helper: (a0: integer, b0: integer) -> (integer)\n  \
         let a = a0 mod 9973\n  \
         let b = b0 mod 97\n  \
         if b = 0:\n    \
         a - 1\n  \
         else:\n    \
         (a / b) + {helper_tail}\n\n\
         fun main_f: (x: integer, y: integer, xs: [integer]) -> (integer)\n  \
         let acc = ({seed}) mod 9973\n  \
         for v in xs:\n    \
         acc := ((acc + {step}) mod 9973)\n  \
         if {cond}:\n    \
         acc := ((acc + helper({then_arg}, y)) mod 9973)\n  \
         else:\n    \
         acc := ((acc - helper(x, {else_arg})) mod 9973)\n  \
         if {tail_cond}:\n    \
         (acc * 3) + {tail_then}\n  \
         else:\n    \
         (acc * 5) - {tail_else}\n"
    )
}

/// The routing program used by the send-differential properties: the same
/// hash-and-forward shape as the paper's Memcached proxy, plus a raw-index
/// variant whose out-of-range arm exercises the channel error path.
const ROUTING_DIFFERENTIAL_SRC: &str = "\
type cmd: record
  key : string

proc P: (cmd/cmd client, [cmd/cmd] backends)
  client => target_backend(backends)

fun target_backend: ([-/cmd] backends, req: cmd) -> ()
  let target = hash(req.key) mod len(backends)
  req => backends[target]

fun direct: ([-/cmd] backends, req: cmd, k: integer) -> ()
  req => backends[k]
";

/// Builds a `cmd` message with the given key, as the wire parser would.
fn cmd_msg(key: &str) -> Value {
    let mut msg = Message::new("cmd");
    msg.set("key", MsgValue::Str(key.to_string()));
    Value::Msg(msg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Differential: generated integer programs (arithmetic, control flow,
    /// nested calls, division/modulo error arms) produce identical results
    /// — or identical errors blaming the same function — under the
    /// interpreter and the VM.
    #[test]
    fn interp_and_vm_agree_on_generated_programs(
        bytes in proptest::collection::vec(any::<u8>(), 16..96),
        x in -1000i64..1000,
        y in -1000i64..1000,
        xs in proptest::collection::vec(-100i64..100, 0..12),
    ) {
        let src = gen_differential_program(&bytes);
        let args = vec![
            RtVal::Val(Value::Int(x)),
            RtVal::Val(Value::Int(y)),
            RtVal::Val(Value::List(xs.iter().copied().map(Value::Int).collect())),
        ];
        assert_engines_agree(&src, "main_f", args);
    }

    /// Differential: hash-based routing forwards every key to the same
    /// backend channel under both engines, for any key set and pool size.
    #[test]
    fn interp_and_vm_route_keys_identically(
        keys in proptest::collection::vec("[a-z0-9]{0,12}", 1..8),
        nbackends in 1usize..6,
    ) {
        for key in &keys {
            let args = vec![
                RtVal::ChannelArray((0..nbackends).collect()),
                RtVal::Val(cmd_msg(key)),
            ];
            assert_engines_agree(ROUTING_DIFFERENTIAL_SRC, "target_backend", args);
        }
    }

    /// Differential: raw channel indexing agrees between engines both when
    /// the index is valid (same send) and when it is out of range (same
    /// `channel index N out of range` error, same blamed function).
    #[test]
    fn interp_and_vm_agree_on_channel_index_errors(
        nbackends in 1usize..4,
        k in 0i64..8,
    ) {
        let args = vec![
            RtVal::ChannelArray((0..nbackends).collect()),
            RtVal::Val(cmd_msg("k")),
            RtVal::Val(Value::Int(k)),
        ];
        assert_engines_agree(ROUTING_DIFFERENTIAL_SRC, "direct", args);
    }

    /// Differential: deeply nested if/else chains (long forward-jump
    /// ladders in bytecode) pick the same arm at every depth.
    #[test]
    fn interp_and_vm_agree_on_nested_branches(depth in 1usize..9, x in -5i64..15) {
        let mut src = String::from("type cmd: record\n  key : string\n\nproc P: (cmd/cmd c)\n  c => c\n\n");
        src.push_str(&nested_if_source(depth));
        assert_engines_agree(&src, "f", vec![RtVal::Val(Value::Int(x))]);
    }

    /// Differential: division by zero raises the same base error in both
    /// engines, and both diagnostics blame `fn f` (interp with a statement
    /// index, VM with a pc).
    #[test]
    fn interp_and_vm_report_comparable_division_errors(x in -50i64..50, y in -2i64..3) {
        let src = "type cmd: record\n  key : string\n\nproc P: (cmd/cmd c)\n  c => c\n\n\
                   fun f: (x: integer, y: integer) -> (integer)\n  let d = x / y\n  d + 1\n";
        assert_engines_agree(src, "f", vec![RtVal::Val(Value::Int(x)), RtVal::Val(Value::Int(y))]);
    }
}
