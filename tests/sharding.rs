//! Integration suite for the sharded runtime: placement determinism,
//! stealing under skew, and no lost wakeups across the cross-shard graph
//! handoff (the sharding acceptance gates; run with
//! `cargo test -q sharding -- --test-threads=1` in a loop for stress
//! evidence).

use flick::runtime_crate::{Placement, PlacementPolicy, RuntimeMetrics, ShardLoad, ShardStatus};
use flick::services::hadoop::hadoop_aggregator;
use flick::services::http::StaticWebServerFactory;
use flick::{Platform, PlatformConfig, ServiceSpec};
use flick_workload::backends::start_sink_backend;
use flick_workload::hadoop::{run_hadoop_mappers, wait_for_quiescence, HadoopLoadConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn web_platform(shards: usize, placement: Placement) -> Platform {
    Platform::new(PlatformConfig {
        workers: shards, // one worker per shard
        shards,
        placement,
        ..Default::default()
    })
}

/// Opens a connection and waits until the service has built a graph for it.
fn connect_and_wait_for_graph(
    platform: &Platform,
    service: &flick::runtime_crate::DeployedService,
    port: u16,
    expected_graphs: u64,
) -> flick::net_substrate::Endpoint {
    let client = platform.net().connect(port).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(5);
    while service.live_graphs() < expected_graphs {
        assert!(
            Instant::now() < deadline,
            "graph {expected_graphs} was never instantiated"
        );
        std::thread::yield_now();
    }
    client
}

/// Round-robin placement is deterministic: with 4 shards and 8 graphs
/// instantiated one at a time, every shard builds exactly 2.
#[test]
fn sharding_round_robin_placement_is_deterministic() {
    let platform = web_platform(4, Placement::RoundRobin);
    let service = platform
        .deploy(ServiceSpec::new(
            "web",
            8800,
            StaticWebServerFactory::new(&b"ok"[..]),
        ))
        .unwrap();
    // Connect sequentially, waiting for each graph: placement decisions
    // then happen in connection order, so the rotation is reproducible.
    let _clients: Vec<_> = (0..8)
        .map(|i| connect_and_wait_for_graph(&platform, &service, 8800, i + 1))
        .collect();
    let status: Vec<ShardStatus> = platform.shard_status();
    let built: Vec<u64> = status.iter().map(|s| s.graphs_built).collect();
    assert_eq!(
        built,
        vec![2, 2, 2, 2],
        "8 graphs over 4 round-robin shards must land 2-2-2-2: {status:?}"
    );
}

/// The least-loaded policy sends sequentially arriving graphs to distinct
/// shards: each placed graph raises its shard's registered-task count, so
/// the next placement must pick a different (still empty) shard.
#[test]
fn sharding_least_loaded_spreads_sequential_graphs() {
    let platform = web_platform(2, Placement::LeastLoaded);
    let service = platform
        .deploy(ServiceSpec::new(
            "web",
            8801,
            StaticWebServerFactory::new(&b"ok"[..]),
        ))
        .unwrap();
    let _clients: Vec<_> = (0..4)
        .map(|i| connect_and_wait_for_graph(&platform, &service, 8801, i + 1))
        .collect();
    let status = platform.shard_status();
    assert!(
        status.iter().all(|s| s.graphs_built >= 1),
        "least-loaded placement must not pile sequential graphs onto one \
         shard: {status:?}"
    );
}

/// A placement policy that pins every graph to one shard — the skew
/// generator for the steal test.
#[derive(Debug)]
struct PinTo(usize);

impl PlacementPolicy for PinTo {
    fn label(&self) -> &'static str {
        "pin"
    }
    fn place(&self, _loads: &[ShardLoad]) -> usize {
        self.0
    }
}

/// Steal under skew: every graph is deliberately placed on shard 0, so
/// shard 1's worker can contribute only through the cross-shard steal
/// path — and under sustained load it must.
#[test]
fn sharding_steal_under_skew() {
    let platform = web_platform(2, Placement::Custom(Arc::new(PinTo(0))));
    let service = platform
        .deploy(ServiceSpec::new(
            "web",
            8802,
            StaticWebServerFactory::new(&b"ok"[..]),
        ))
        .unwrap();
    let net = platform.net();
    let clients: Vec<_> = (0..8).map(|_| net.connect(8802).unwrap()).collect();
    // Sustained closed-loop load: 8 connections served by shard 0's single
    // worker leave a queue for shard 1 to steal from.
    for round in 0..30 {
        for c in &clients {
            c.write_all(format!("GET /{round} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
                .unwrap();
        }
        for c in &clients {
            let mut buf = [0u8; 1024];
            let mut seen = 0;
            while seen == 0 {
                seen = c
                    .read_timeout(&mut buf, Duration::from_secs(10))
                    .expect("response arrives");
            }
        }
    }
    let status = platform.shard_status();
    assert_eq!(
        status[1].graphs_built, 0,
        "the pin policy must have kept every graph on shard 0: {status:?}"
    );
    let stolen = RuntimeMetrics::get(&platform.metrics().tasks_stolen);
    assert!(
        stolen > 0,
        "shard 1 must have stolen work from the skewed shard 0 \
         (status: {status:?})"
    );
    assert_eq!(status[0].load.stolen_out, status[1].load.stolen_in);
    drop(clients);
    drop(service);
}

/// The cross-shard extension of `stress_no_lost_wakeups`: client threads
/// hammer a sharded service with request/response cycles while graphs are
/// placed round-robin across 4 shards (accept on the home shard, register
/// on the placed shard). A wakeup lost anywhere in the accept → place →
/// register → schedule chain shows up as a response timeout; a teardown
/// event lost across shards shows up as a graph that never dies.
#[test]
fn sharding_stress_no_lost_wakeups_across_handoff() {
    const CLIENTS: usize = 12;
    const ROUNDS: usize = 25;

    let platform = web_platform(4, Placement::RoundRobin);
    let service = platform
        .deploy(ServiceSpec::new(
            "web",
            8803,
            StaticWebServerFactory::new(&b"stress-body"[..]),
        ))
        .unwrap();
    let net = platform.net();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|id| {
            let net = Arc::clone(&net);
            std::thread::spawn(move || {
                let client = net.connect(8803).expect("connect");
                for round in 0..ROUNDS {
                    client
                        .write_all(
                            format!("GET /{id}/{round} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
                        )
                        .expect("request");
                    // Read until the response body shows up; a lost wakeup
                    // anywhere in the handoff chain turns into a timeout
                    // here.
                    let mut response = Vec::new();
                    let mut buf = [0u8; 1024];
                    while !response.windows(11).any(|w| w == b"stress-body") {
                        let n = client
                            .read_timeout(&mut buf, Duration::from_secs(10))
                            .unwrap_or_else(|e| {
                                panic!("client {id} round {round}: lost response: {e}")
                            });
                        response.extend_from_slice(&buf[..n]);
                    }
                }
                // Close races the dispatcher's teardown path.
                client.close();
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }

    assert_eq!(service.connections_accepted(), CLIENTS as u64);
    // Every shard participated (round-robin over 12 graphs and 4 shards).
    let status = platform.shard_status();
    assert!(
        status.iter().all(|s| s.graphs_built >= 1),
        "placement must have reached every shard: {status:?}"
    );
    // All closes observed: every graph dies, on whichever shard it lived.
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.live_graphs() > 0 {
        assert!(
            Instant::now() < deadline,
            "teardown event lost across shards: {} graphs still alive",
            service.live_graphs()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Multi-connection services (the Hadoop aggregator groups all mapper
/// connections into one graph) keep working when the platform is sharded:
/// the home shard accumulates the connection group, the placed shard runs
/// the whole graph.
#[test]
fn sharding_multi_connection_graphs_survive_placement() {
    let platform = Platform::new(PlatformConfig {
        workers: 4,
        shards: 2,
        ..Default::default()
    });
    let net = platform.net();
    let (_reducer, reducer_bytes) = start_sink_backend(&net, 9951);
    let _svc = platform
        .deploy(ServiceSpec::new("hadoop", 9950, hadoop_aggregator(3)).with_backends(vec![9951]))
        .unwrap();
    let stats = run_hadoop_mappers(
        &net,
        &HadoopLoadConfig {
            port: 9950,
            mappers: 3,
            word_len: 12,
            distinct_words: 50,
            bytes_per_mapper: 64 * 1024,
            link_bits_per_sec: None,
            seed: None,
        },
    );
    assert_eq!(stats.failed, 0);
    let forwarded = wait_for_quiescence(&reducer_bytes, Duration::from_secs(10));
    assert!(
        forwarded > 0,
        "the aggregated stream must reach the reducer"
    );
    assert!(
        forwarded < stats.bytes,
        "aggregation must reduce traffic: {} -> {forwarded}",
        stats.bytes
    );
}
