//! Loopback integration suite for the OS socket transport.
//!
//! Everything here runs over real kernel TCP on `127.0.0.1` with port-0
//! binds (the OS picks a free ephemeral port, so the suite is safe to run
//! repeatedly and in parallel with other processes). CI runs it as a
//! dedicated single-threaded step.
//!
//! Covered:
//!
//! * accept → parse → task graph → backend → reply, end to end on the
//!   event backend, with **zero** endpoint scans while idle (the
//!   acceptance bar of the OS transport);
//! * partial reads/writes: bodies far larger than a socket buffer;
//! * EOF teardown driven by `watch_exit` task-exit events;
//! * a real-socket port of the `stress_no_lost_wakeups` poller stress and
//!   of the cross-poller registration handoff stress.

use flick::net_substrate::{Interest, NetError, Poller, StackModel, TcpStack, Token};
use flick::services::http::{HttpLoadBalancerFactory, StaticWebServerFactory};
use flick::{Platform, PlatformConfig, ServiceSpec};
use flick_workload::backends::start_tcp_http_backend;
use flick_workload::tcp::{fetch_http, run_tcp_http_load, TcpHttpLoadConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn tcp_platform(workers: usize, shards: usize) -> Platform {
    // CI runs the whole suite a second time with FLICK_TEST_SHARDS=2 so
    // every test also exercises the sharded kernel path (one reactor and
    // one SO_REUSEPORT accept socket per shard) without a second copy of
    // the test file. Tests must therefore derive shard-dependent
    // assertions from `Platform::shard_count`, not their requested value.
    let shards = std::env::var("FLICK_TEST_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(shards);
    Platform::new(PlatformConfig {
        workers,
        shards,
        ..Default::default()
    })
}

fn deploy_web(platform: &Platform, body: &'static [u8]) -> flick::runtime_crate::DeployedService {
    platform
        .deploy_tcp(
            ServiceSpec::new("tcp-web", 0, StaticWebServerFactory::new(body)),
            "127.0.0.1:0",
        )
        .expect("deploy over a loopback socket")
}

/// A raw `std::net` client issues an HTTP request against the deployed
/// service; the response must round-trip through parse → task graph →
/// reply, and the idle service must perform zero endpoint scans.
#[test]
fn http_request_round_trips_over_a_real_socket() {
    let platform = tcp_platform(2, 1);
    let service = deploy_web(&platform, b"hello over real tcp");
    let addr = format!("127.0.0.1:{}", service.port());

    let mut stream = TcpStream::connect(&addr).expect("kernel connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    for i in 0..3 {
        stream
            .write_all(format!("GET /{i} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = Vec::new();
        let mut buf = [0u8; 1024];
        while !response.windows(19).any(|w| w == b"hello over real tcp") {
            let n = stream.read(&mut buf).expect("read response");
            assert!(n > 0, "server closed mid-response");
            response.extend_from_slice(&buf[..n]);
        }
        let text = String::from_utf8_lossy(&response);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "got: {text}");
    }
    assert_eq!(service.connections_accepted(), 1);
    assert_eq!(service.live_graphs(), 1);

    // The idle-scan property extends to OS traffic: while the connected
    // client stays silent, the event dispatcher touches nothing.
    std::thread::sleep(Duration::from_millis(20));
    let stack = platform.tcp_stack();
    let stats = stack.stats();
    let before = stats.snapshot();
    std::thread::sleep(Duration::from_millis(100));
    let after = stats.snapshot();
    assert_eq!(
        after.readable_polls, before.readable_polls,
        "idle event dispatcher must not scan OS endpoints"
    );
    assert_eq!(
        after.read_calls, before.read_calls,
        "idle event dispatcher must not issue reads on OS endpoints"
    );
}

/// Bodies larger than any socket buffer force partial reads and writes on
/// both sides of the middlebox.
#[test]
fn large_bodies_survive_partial_reads_and_writes() {
    const BODY: usize = 1 << 20; // 1 MiB response body.
    static BIG: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    let body = BIG.get_or_init(|| vec![b'z'; BODY]);

    let platform = tcp_platform(2, 1);
    let service = platform
        .deploy_tcp(
            ServiceSpec::new("tcp-big", 0, StaticWebServerFactory::new(&body[..])),
            "127.0.0.1:0",
        )
        .unwrap();
    let addr = format!("127.0.0.1:{}", service.port());

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /big HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut response = Vec::new();
    let mut buf = [0u8; 64 * 1024];
    let deadline = Instant::now() + Duration::from_secs(30);
    while response.len() < BODY {
        assert!(Instant::now() < deadline, "response stalled");
        let n = stream.read(&mut buf).expect("read");
        assert!(n > 0, "early EOF after {} bytes", response.len());
        response.extend_from_slice(&buf[..n]);
    }
    // Everything after the header must be the body, unbroken.
    let header_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator")
        + 4;
    let deadline = Instant::now() + Duration::from_secs(30);
    while response.len() < header_end + BODY {
        assert!(Instant::now() < deadline, "body stalled");
        let n = stream.read(&mut buf).expect("read body tail");
        assert!(n > 0);
        response.extend_from_slice(&buf[..n]);
    }
    assert!(response[header_end..header_end + BODY]
        .iter()
        .all(|&b| b == b'z'));
}

/// Closing the client socket drives EOF through the input task; the
/// `watch_exit` chain must tear the graph down without any polling.
#[test]
fn client_eof_tears_the_graph_down() {
    let platform = tcp_platform(2, 1);
    let service = deploy_web(&platform, b"short");
    let addr = format!("127.0.0.1:{}", service.port());

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(b"GET / HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf).unwrap();
    assert!(n > 0);
    assert_eq!(service.live_graphs(), 1);

    drop(stream); // FIN: the input task reads EOF and exits.
    let deadline = Instant::now() + Duration::from_secs(5);
    while service.live_graphs() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(
        service.live_graphs(),
        0,
        "graph must be destroyed after the kernel delivers EOF"
    );
}

/// Connections land on every shard: the placement path (accept on the home
/// shard, build via the target shard's inbox, register with the target's
/// poller) works when the bytes come from the kernel.
#[test]
fn connections_are_served_across_shards_over_tcp() {
    let platform = tcp_platform(4, 4);
    let service = deploy_web(&platform, b"sharded tcp");
    let addr = format!("127.0.0.1:{}", service.port());

    let mut streams: Vec<TcpStream> = (0..8)
        .map(|_| {
            let s = TcpStream::connect(&addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            s
        })
        .collect();
    for (i, s) in streams.iter_mut().enumerate() {
        s.write_all(format!("GET /{i} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .unwrap();
    }
    for s in &mut streams {
        let mut buf = [0u8; 1024];
        let n = s.read(&mut buf).expect("every shard answers");
        assert!(n > 0);
    }
    let status = platform.shard_status();
    assert_eq!(status.len(), platform.shard_count());
    assert!(
        status.iter().all(|s| s.graphs_built >= 1),
        "round-robin placement must reach every shard: {status:?}"
    );
}

/// The blocking loopback workload driver measures real throughput and
/// latency against the platform.
#[test]
fn tcp_workload_driver_measures_the_service() {
    let platform = tcp_platform(2, 1);
    let service = deploy_web(&platform, b"bench me");
    let addr = format!("127.0.0.1:{}", service.port());

    let stats = run_tcp_http_load(
        &addr,
        &TcpHttpLoadConfig {
            concurrency: 4,
            duration: Duration::from_millis(300),
            persistent: true,
            timeout: Duration::from_secs(5),
        },
    );
    assert!(stats.completed > 10, "expected real throughput: {stats:?}");
    assert!(stats.latency.mean > Duration::ZERO);
    assert!(service.connections_accepted() >= 4);

    // The one-shot helper (the curl-style smoke of the README).
    let response = fetch_http(&addr, "/smoke", Duration::from_secs(5)).expect("fetch");
    assert!(String::from_utf8_lossy(&response).starts_with("HTTP/1.1 200 OK"));
}

/// The all-TCP data path: kernel clients → TCP-fronted load balancer →
/// kernel-socket back-ends, with the LB's `BackendPool` holding TCP
/// targets. Every hop crosses real sockets, the hash spreads connections
/// over the back-ends, and the shared-buffer ingest path performs zero
/// copies on kernel traffic too.
#[test]
fn all_tcp_lb_path_serves_with_zero_ingest_copies() {
    let backends: Vec<_> = (0..3)
        .map(|_| start_tcp_http_backend(b"lb-over-tcp"))
        .collect();
    let platform = tcp_platform(2, 1);
    let service = platform
        .deploy_tcp(
            ServiceSpec::new("tcp-lb", 0, HttpLoadBalancerFactory::new())
                .with_tcp_backends(backends.iter().map(|b| b.addr().to_string()).collect()),
            "127.0.0.1:0",
        )
        .expect("deploy the all-TCP load balancer");
    let addr = format!("127.0.0.1:{}", service.port());

    // The curl-style smoke first: one request end to end through the
    // kernel, forwarded to a kernel back-end and back.
    let response = fetch_http(&addr, "/smoke", Duration::from_secs(5)).expect("smoke");
    let text = String::from_utf8_lossy(&response);
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    assert!(text.contains("lb-over-tcp"), "{text}");

    let stats = run_tcp_http_load(
        &addr,
        &TcpHttpLoadConfig {
            concurrency: 4,
            duration: Duration::from_millis(300),
            persistent: true,
            timeout: Duration::from_secs(5),
        },
    );
    assert!(stats.completed > 10, "{stats:?}");
    let served: Vec<u64> = backends.iter().map(|b| b.requests_served()).collect();
    assert!(
        served.iter().filter(|s| **s > 0).count() >= 2,
        "the TCP backend pool must spread connections: {served:?}"
    );
    let snap = platform.tcp_stack().stats().snapshot();
    assert_eq!(
        snap.ingest_copies, 0,
        "the shared-buffer ingest path must not copy on kernel sockets \
         ({} events, {} bytes)",
        snap.ingest_copies, snap.ingest_copied_bytes
    );
}

/// Writable parking over real sockets: a kernel client that stops reading
/// fills the socket buffers, the service's output task parks on
/// `EPOLLOUT` interest — zero busy retries and a quiet platform while the
/// peer stalls — and the response completes once the client drains.
#[test]
fn stalled_tcp_peer_parks_the_output_task() {
    const BODY: usize = 4 << 20; // Far beyond loopback socket buffering.
    static BIG: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    let body = BIG.get_or_init(|| vec![b'w'; BODY]);

    let platform = tcp_platform(2, 1);
    let service = platform
        .deploy_tcp(
            ServiceSpec::new("tcp-stall", 0, StaticWebServerFactory::new(&body[..])),
            "127.0.0.1:0",
        )
        .unwrap();
    let addr = format!("127.0.0.1:{}", service.port());

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /stall HTTP/1.1\r\nHost: s\r\n\r\n")
        .unwrap();
    // Let the output task fill the kernel buffers and hit EAGAIN.
    std::thread::sleep(Duration::from_millis(200));
    let before = platform.metrics().snapshot();
    std::thread::sleep(Duration::from_millis(150));
    let after = platform.metrics().snapshot();
    assert_eq!(
        after.output_busy_retries, 0,
        "a stalled kernel peer must park the output task, not spin it"
    );
    assert_eq!(
        after.task_runs, before.task_runs,
        "a parked output task costs zero task runs while the peer stalls"
    );

    // Drain: the EPOLLOUT wakeups resume the flush until the full body
    // has crossed the socket.
    let mut got = 0usize;
    let mut buf = [0u8; 64 * 1024];
    let deadline = Instant::now() + Duration::from_secs(30);
    while got < BODY {
        assert!(Instant::now() < deadline, "drain stalled at {got} bytes");
        let n = stream.read(&mut buf).expect("drain");
        assert!(n > 0, "early EOF at {got} bytes");
        got += n;
    }
}

/// Malformed frames over real kernel sockets (the fuzz corpus's greatest
/// hits, replayed byte-for-byte through the OS transport): an oversized
/// `Content-Length` declaration, a spliced frame fusing two heads, and a
/// truncated head followed by FIN. Each poison must cost exactly its own
/// connection — the server closes the offender without answering and
/// records the malformed close — and a clean sibling request on a fresh
/// connection must succeed immediately after every one.
#[test]
fn malformed_frames_cost_only_their_own_connection() {
    let platform = tcp_platform(2, 1);
    let service = deploy_web(&platform, b"still alive");
    let addr = format!("127.0.0.1:{}", service.port());
    let stack = platform.tcp_stack();
    let stats = stack.stats();

    let read_until_close = |stream: &mut TcpStream| -> Vec<u8> {
        let mut all = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => all.extend_from_slice(&buf[..n]),
                Err(_) => break, // an RST after the server's close is a close too
            }
        }
        all
    };
    let wait_for_malformed = |at_least: u64| {
        let deadline = Instant::now() + Duration::from_secs(5);
        while stats.snapshot().malformed_closes < at_least {
            assert!(
                Instant::now() < deadline,
                "malformed close never recorded: {} < {at_least}",
                stats.snapshot().malformed_closes
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    };
    let sibling_still_served = || {
        let response = fetch_http(&addr, "/ok", Duration::from_secs(5)).expect("sibling");
        let text = String::from_utf8_lossy(&response);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.contains("still alive"), "{text}");
    };

    // 1. Oversized declaration: 16 GiB against the 16 MiB body cap. The
    //    limit check fires on the declared size, long before any body
    //    byte arrives, so nothing gets buffered.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(b"POST /huge HTTP/1.1\r\nHost: t\r\nContent-Length: 17179869184\r\n\r\n")
        .unwrap();
    let leaked = read_until_close(&mut stream);
    assert!(
        leaked.is_empty(),
        "server answered an oversized declaration: {:?}",
        String::from_utf8_lossy(&leaked)
    );
    wait_for_malformed(1);
    sibling_still_served();

    // 2. Spliced frame: a partial head with a second complete request
    //    fused onto it ("GEGET /…" is no method). The splice is only
    //    detectable once the head terminator lands — incremental
    //    reassembly must carry the poison across the two writes.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(b"GE").unwrap();
    stream
        .write_all(b"GET /spliced HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let leaked = read_until_close(&mut stream);
    assert!(
        leaked.is_empty(),
        "server answered a spliced frame: {:?}",
        String::from_utf8_lossy(&leaked)
    );
    wait_for_malformed(2);
    sibling_still_served();

    // 3. Truncated head, then FIN. No verdict is possible — the bytes so
    //    far are a legal prefix — so this is not a malformed close; the
    //    server just owes a leak-free teardown of the half-parsed graph.
    let before_graphs = service.live_graphs();
    let stream = {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(b"GET /cut HTTP/1.1\r\nHo").unwrap();
        s
    };
    drop(stream); // FIN mid-head.
    let deadline = Instant::now() + Duration::from_secs(5);
    while service.live_graphs() > before_graphs && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        service.live_graphs() <= before_graphs,
        "truncated-head graph leaked"
    );
    sibling_still_served();

    assert_eq!(
        stats.snapshot().malformed_closes,
        2,
        "exactly the two poisoned connections may be flagged"
    );
}

/// Real-socket port of the poller `stress_no_lost_wakeups` test: writer
/// threads race closers over kernel TCP while one consumer drains via
/// readiness events. A lost kernel edge shows up as a timeout.
#[test]
fn stress_no_lost_wakeups_over_tcp() {
    const WRITERS: usize = 4;
    const BYTES_PER_WRITER: usize = 256 * 1024;

    let stack = TcpStack::new(StackModel::Free);
    let listener = stack.listen("127.0.0.1:0").unwrap();
    let addr = format!("127.0.0.1:{}", listener.port());
    let poller = Poller::new();
    let mut readers = Vec::new();
    let mut handles = Vec::new();
    for i in 0..WRITERS {
        let client = stack.connect(&addr).unwrap();
        let server = listener
            .accept_timeout(Duration::from_secs(5))
            .expect("accept");
        server.register(&poller, Token(i as u64), Interest::READABLE);
        readers.push(server);
        handles.push(std::thread::spawn(move || {
            let chunk = [0x5au8; 997];
            let mut sent = 0usize;
            while sent < BYTES_PER_WRITER {
                let n = (BYTES_PER_WRITER - sent).min(chunk.len());
                client.write_all(&chunk[..n]).expect("peer stays open");
                sent += n;
            }
            client.close();
        }));
    }

    let mut received = vec![0usize; WRITERS];
    let mut eof = vec![false; WRITERS];
    let mut buf = [0u8; 8192];
    let deadline = Instant::now() + Duration::from_secs(60);
    while eof.iter().any(|done| !done) {
        assert!(
            Instant::now() < deadline,
            "lost wakeup: received {received:?}, eof {eof:?}"
        );
        for event in poller.wait(Duration::from_millis(100)) {
            let idx = event.token.0 as usize;
            loop {
                match readers[idx].read(&mut buf) {
                    Ok(n) => received[idx] += n,
                    Err(NetError::WouldBlock) => break,
                    Err(NetError::Closed) => {
                        eof[idx] = true;
                        break;
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }
    }
    for (i, handle) in handles.into_iter().enumerate() {
        handle.join().unwrap();
        assert_eq!(received[i], BYTES_PER_WRITER, "writer {i}");
    }
}

/// Regression for the close-path ordering in the reactor: rapid
/// connect → register → close churn recycles fds (and epoll userdata)
/// while readable events for the dead registrations may still be in
/// flight inside the reactor's batch. The generation guard must drop
/// those stale events instead of attributing them to whoever owns the
/// recycled fd now, and a healthy long-lived connection sharing the
/// poller must come through the churn with exact byte delivery and no
/// spurious teardown.
#[test]
fn close_churn_does_not_poison_recycled_fd_tokens() {
    const CHURN_ROUNDS: u64 = 200;

    let stack = TcpStack::new(StackModel::Free);
    let listener = stack.listen("127.0.0.1:0").unwrap();
    let addr = format!("127.0.0.1:{}", listener.port());
    let poller = Poller::new();

    // The long-lived victim connection, registered before the churn.
    let victim_client = stack.connect(&addr).unwrap();
    let victim = listener.accept_timeout(Duration::from_secs(5)).unwrap();
    victim.register(&poller, Token(1), Interest::READABLE);

    for round in 0..CHURN_ROUNDS {
        let client = stack.connect(&addr).unwrap();
        let server = listener.accept_timeout(Duration::from_secs(5)).unwrap();
        server.register(&poller, Token(1000 + round), Interest::READABLE);
        // Make the registration hot: bytes in flight mean the reactor
        // very likely has (or is about to batch) an event for this fd at
        // the moment it closes.
        client.write_all(b"burst").unwrap();
        server.close();
        client.close();
    }

    // The victim still works end to end: its bytes arrive under its own
    // token and it never observes a close it did not cause.
    let payload = b"alive after churn";
    victim_client.write_all(payload).unwrap();
    let mut got = 0usize;
    let mut buf = [0u8; 1024];
    let deadline = Instant::now() + Duration::from_secs(10);
    while got < payload.len() {
        assert!(
            Instant::now() < deadline,
            "victim starved after fd churn: {got} of {} bytes",
            payload.len()
        );
        for event in poller.wait(Duration::from_millis(100)) {
            if event.token != Token(1) {
                // Stragglers from churned registrations are legal
                // (posted before their close); reading them is not
                // possible — their endpoints are gone — but they must
                // not carry the victim's token.
                continue;
            }
            assert!(
                !event.readiness.closed,
                "victim saw a spurious close after fd churn"
            );
            loop {
                match victim.read(&mut buf) {
                    Ok(n) => got += n,
                    Err(NetError::WouldBlock) => break,
                    Err(e) => panic!("victim broken after churn: {e}"),
                }
            }
        }
    }
    assert_eq!(got, payload.len());
}

/// Event-batch draining stress: more concurrently readable sockets than
/// one `epoll_wait` batch can carry (`MAX_EVENTS` = 256 in the reactor).
/// Several write rounds land on every connection at once, then an EOF
/// round; exact per-token byte counts prove no event was lost and no
/// bytes were double-delivered across the multi-batch drain.
#[test]
fn event_batches_beyond_max_events_lose_nothing() {
    const CONNS: usize = 300; // > the reactor's 256-event batch.
    const ROUNDS: usize = 3;
    const CHUNK: usize = 512;

    let stack = TcpStack::new(StackModel::Free);
    let listener = stack.listen("127.0.0.1:0").unwrap();
    let addr = format!("127.0.0.1:{}", listener.port());
    let poller = Poller::new();

    let mut clients = Vec::with_capacity(CONNS);
    let mut servers = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        let client = stack.connect(&addr).unwrap();
        let server = listener
            .accept_timeout(Duration::from_secs(5))
            .expect("accept");
        server.register(&poller, Token(i as u64), Interest::READABLE);
        clients.push(client);
        servers.push(server);
    }

    let mut received = vec![0usize; CONNS];
    let mut eof = vec![false; CONNS];
    let mut buf = [0u8; 8192];
    let mut drain = |received: &mut [usize], eof: &mut [bool], target: usize, label: &str| {
        let deadline = Instant::now() + Duration::from_secs(60);
        while received.iter().any(|n| *n < target) {
            assert!(
                Instant::now() < deadline,
                "{label}: starved with counts {:?}",
                received
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| **n < target)
                    .collect::<Vec<_>>()
            );
            for event in poller.wait(Duration::from_millis(100)) {
                let idx = event.token.0 as usize;
                loop {
                    match servers[idx].read(&mut buf) {
                        Ok(n) => received[idx] += n,
                        Err(NetError::WouldBlock) => break,
                        Err(NetError::Closed) => {
                            eof[idx] = true;
                            break;
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            }
        }
    };

    for round in 0..ROUNDS {
        // Every socket becomes readable at once: the reactor must spread
        // the burst over multiple epoll batches without dropping any.
        let fill = [round as u8; CHUNK];
        for client in &clients {
            client.write_all(&fill).unwrap();
        }
        drain(&mut received, &mut eof, (round + 1) * CHUNK, "write round");
    }
    for (i, n) in received.iter().enumerate() {
        assert_eq!(*n, ROUNDS * CHUNK, "conn {i}: double or lost delivery");
    }

    // The EOF burst: every close must surface exactly once.
    for client in &clients {
        client.close();
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    while eof.iter().any(|done| !done) {
        assert!(
            Instant::now() < deadline,
            "lost EOF: {} of {CONNS} observed",
            eof.iter().filter(|done| **done).count()
        );
        for event in poller.wait(Duration::from_millis(100)) {
            let idx = event.token.0 as usize;
            loop {
                match servers[idx].read(&mut buf) {
                    Ok(n) => received[idx] += n,
                    Err(NetError::WouldBlock) => break,
                    Err(NetError::Closed) => {
                        eof[idx] = true;
                        break;
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }
    }
    for (i, n) in received.iter().enumerate() {
        assert_eq!(*n, ROUNDS * CHUNK, "conn {i}: bytes appeared after EOF");
    }
}

/// Real-socket port of the cross-poller handoff stress: while a writer
/// races at full speed, the consumer repeatedly re-registers the socket
/// with a fresh poller (the sharded runtime's accept → place → register
/// path). The `EPOLL_CTL_MOD` re-arm plus the synthetic level-trigger at
/// registration must never lose a byte or the final EOF.
#[test]
fn handoff_between_pollers_loses_no_wakeups_over_tcp() {
    const TOTAL: usize = 1 << 20;

    let stack = TcpStack::new(StackModel::Free);
    let listener = stack.listen("127.0.0.1:0").unwrap();
    let addr = format!("127.0.0.1:{}", listener.port());
    let client = stack.connect(&addr).unwrap();
    let server = listener.accept_timeout(Duration::from_secs(5)).unwrap();

    let writer = std::thread::spawn(move || {
        let chunk = [0xa5u8; 613];
        let mut sent = 0usize;
        while sent < TOTAL {
            let n = (TOTAL - sent).min(chunk.len());
            client.write_all(&chunk[..n]).expect("peer stays open");
            sent += n;
        }
        client.close();
    });

    // Each handoff round drains at most `ROUND_BUDGET` bytes before moving
    // the registration again. Stopping mid-drain is deliberate: with
    // edge-triggered epoll no further kernel event will fire for the bytes
    // left behind, so the *next* registration's synthetic level-trigger
    // post is what must resume the stream — precisely the handoff-safety
    // property under test.
    const ROUND_BUDGET: usize = 128 * 1024;
    let mut received = 0usize;
    let mut eof = false;
    let mut buf = [0u8; 1500];
    let mut handoffs = 0u32;
    let deadline = Instant::now() + Duration::from_secs(60);
    while !eof {
        assert!(
            Instant::now() < deadline,
            "lost wakeup across poller handoff: {received} of {TOTAL} bytes \
             after {handoffs} handoffs"
        );
        let poller = Poller::new();
        server.register(&poller, Token(u64::from(handoffs)), Interest::READABLE);
        handoffs += 1;
        let mut round = 0usize;
        'round: while !eof && round < ROUND_BUDGET {
            assert!(
                Instant::now() < deadline,
                "lost wakeup mid-round: {received} of {TOTAL} bytes"
            );
            for _event in poller.wait(Duration::from_millis(100)) {
                loop {
                    match server.read(&mut buf) {
                        Ok(n) => {
                            received += n;
                            round += n;
                            if round >= ROUND_BUDGET {
                                break 'round;
                            }
                        }
                        Err(NetError::WouldBlock) => break,
                        Err(NetError::Closed) => {
                            eof = true;
                            break;
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            }
        }
    }
    writer.join().unwrap();
    assert_eq!(received, TOTAL);
    assert!(handoffs >= 2, "the stream must survive several handoffs");
}
