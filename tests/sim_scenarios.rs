//! The chaos scenario corpus (DESIGN.md §12).
//!
//! Each test drives a whole platform graph through a scripted fault
//! schedule under the deterministic harness and asserts the invariant
//! battery stayed green. Seeds are pinned: a failure prints the seed,
//! and re-running the same test replays the run bit-identically.
//!
//! Run single-threaded for stable wall-clock behaviour:
//! `cargo test --release --test sim_scenarios -- --test-threads=1`

use flick_runtime::{BackendPolicy, Placement, RoutePolicy};
use flick_sim::{
    run_poller_handoff_scenario, run_scenario, run_stall_park_scenario, FaultOp, ScenarioConfig,
    ScheduledFault, TickChecks,
};
use std::time::Duration;

/// Steady traffic against the static web server: the baseline scenario
/// must be conserving, zero-copy, busy-retry-free and leak-free.
#[test]
fn steady_web_traffic_is_clean_and_zero_copy() {
    let report = run_scenario(&ScenarioConfig {
        name: "steady-web",
        seed: 0x51EA_D70F_F00D_0001,
        ticks: 10,
        clients: 4,
        backends: 0,
        checks: TickChecks {
            expect_zero_copy: true,
            expect_no_busy_retries: true,
            retry_budget: None,
        },
        ..Default::default()
    });
    report.assert_clean();
    assert_eq!(report.requests_ok, 40, "{report:?}");
    assert_eq!(report.requests_failed, 0);
}

/// Load-balancer under connection churn: clients constantly close and
/// reconnect, so graphs are created and torn down the whole run.
#[test]
fn lb_connection_churn_stays_clean() {
    let report = run_scenario(&ScenarioConfig {
        name: "lb-churn",
        seed: 0xC401_2222,
        ticks: 12,
        clients: 6,
        backends: 2,
        churn: 0.5,
        ..Default::default()
    });
    report.assert_clean();
    assert!(report.requests_ok >= 60, "{report:?}");
    assert!(
        report.backend_requests_served >= report.requests_ok,
        "{report:?}"
    );
}

/// Byte-at-a-time peers: every request arrives one byte per write, so
/// the input path must reassemble across dozens of partial reads and
/// wakeups per message.
#[test]
fn byte_at_a_time_peers_are_reassembled() {
    let report = run_scenario(&ScenarioConfig {
        name: "byte-wise",
        seed: 0xB17E_0003,
        ticks: 8,
        clients: 4,
        backends: 2,
        byte_at_a_time: 1.0,
        ..Default::default()
    });
    report.assert_clean();
    assert_eq!(report.requests_ok, 32, "{report:?}");
}

/// The FLICK-compiled load balancer running on the bytecode VM (the
/// default execution mode) under churn plus byte-at-a-time delivery: the
/// whole compiler pipeline — grammar projection, IR, bytecode dispatch —
/// sits on the data path, and the full invariant battery must stay green
/// with a pinned seed, exactly as it does for the hand-written factory.
#[test]
fn flick_vm_lb_scenario_with_pinned_seed() {
    let report = run_scenario(&ScenarioConfig {
        name: "flick-vm-lb",
        seed: 0xB1_7EC0_DE05,
        ticks: 10,
        clients: 4,
        backends: 2,
        churn: 0.3,
        byte_at_a_time: 0.5,
        flick_lb: Some(flick_runtime::ExecMode::Vm),
        ..Default::default()
    });
    report.assert_clean();
    assert_eq!(report.requests_ok, 40, "{report:?}");
    assert_eq!(report.requests_failed, 0, "{report:?}");
    assert!(
        report.backend_requests_served >= report.requests_ok,
        "{report:?}"
    );
}

/// Mid-message disconnects: clients abort half-way through a request and
/// vanish; the half-parsed graphs must tear down without leaking.
#[test]
fn mid_message_disconnects_do_not_leak() {
    let report = run_scenario(&ScenarioConfig {
        name: "mid-message",
        seed: 0xAB0_0004,
        ticks: 12,
        clients: 6,
        backends: 2,
        abort_mid_message: 0.35,
        ..Default::default()
    });
    report.assert_clean();
    assert!(report.requests_ok > 0, "{report:?}");
    assert!(report.requests_failed > 0, "aborts must happen: {report:?}");
}

/// Full backend outage and recovery: both backends crash, every request
/// fails while they are down, and service resumes after the restart —
/// with deterministic outcome classes (full outage routes nowhere).
#[test]
fn full_backend_outage_recovers() {
    let report = run_scenario(&ScenarioConfig {
        name: "full-outage",
        seed: 0xDEAD_0005,
        ticks: 10,
        clients: 4,
        backends: 2,
        faults: vec![
            ScheduledFault::at(3, FaultOp::CrashBackend(0)),
            ScheduledFault::at(3, FaultOp::CrashBackend(1)),
            ScheduledFault::at(6, FaultOp::RestartBackend(0)),
            ScheduledFault::at(6, FaultOp::RestartBackend(1)),
        ],
        ..Default::default()
    });
    report.assert_clean();
    // Ticks 0-2 and 6-9 are healthy (4 clients each), 3-5 are dark.
    assert_eq!(report.requests_ok, 28, "{report:?}");
    assert_eq!(report.requests_failed, 12, "{report:?}");
}

/// Mid-message disconnect storm from the service side: every established
/// client connection is severed while requests are in flight.
#[test]
fn severing_all_clients_does_not_wedge_the_service() {
    let report = run_scenario(&ScenarioConfig {
        name: "sever-storm",
        seed: 0x5E4E_0006,
        ticks: 10,
        clients: 4,
        backends: 2,
        faults: vec![
            ScheduledFault::at(3, FaultOp::SeverClients),
            ScheduledFault::at(7, FaultOp::SeverClients),
        ],
        ..Default::default()
    });
    report.assert_clean();
    assert!(report.requests_ok >= 32, "{report:?}");
}

/// Rate-limit storm: every client connection writes through a token
/// bucket; the buckets must conserve tokens at every tick and the
/// service must stay busy-retry-free (its outputs are unrated).
#[test]
fn rate_limit_storm_conserves_tokens() {
    let report = run_scenario(&ScenarioConfig {
        name: "rate-storm",
        seed: 0x7A7E_0007,
        ticks: 8,
        clients: 3,
        backends: 2,
        client_rate: Some((2_000_000, 16 * 1024)),
        ..Default::default()
    });
    report.assert_clean();
    assert_eq!(report.requests_ok, 24, "{report:?}");
}

/// Cross-shard churn: four shards, least-loaded placement, heavy churn —
/// graph placement and work stealing race constantly while connections
/// come and go.
#[test]
fn cross_shard_churn_with_stealing_stays_clean() {
    let report = run_scenario(&ScenarioConfig {
        name: "cross-shard",
        seed: 0xC405_0008,
        ticks: 10,
        clients: 8,
        backends: 2,
        workers: 4,
        shards: 4,
        placement: Placement::LeastLoaded,
        churn: 0.4,
        byte_at_a_time: 0.2,
        ..Default::default()
    });
    report.assert_clean();
    assert!(report.requests_ok >= 60, "{report:?}");
}

/// Satellite: the stall-park stress as a harness scenario with a pinned
/// regression seed — a stalled reader parks the output task (zero busy
/// retries, zero task runs) and the writable wakeup finishes the drain.
#[test]
fn stall_park_scenario_with_pinned_seed() {
    let report = run_stall_park_scenario(0x57A1_1009);
    report.assert_clean();
    assert_eq!(report.requests_ok, 1);
}

/// Satellite: the poller-handoff stress as a harness scenario with a
/// pinned regression seed — no byte and no EOF may fall between an old
/// and a new poller registration while a writer races.
#[test]
fn poller_handoff_scenario_with_pinned_seed() {
    let report = run_poller_handoff_scenario(0x4A4D_000A);
    report.assert_clean();
}

/// The replay contract: the same seed produces byte-identical traces
/// (witnessed by the trace hash) across independent runs of an
/// outcome-deterministic chaos schedule.
#[test]
fn same_seed_replays_byte_identically() {
    let config = ScenarioConfig {
        name: "replay",
        seed: 0x4E91_4900_000B,
        ticks: 8,
        clients: 4,
        backends: 2,
        churn: 0.3,
        byte_at_a_time: 0.3,
        abort_mid_message: 0.2,
        faults: vec![
            ScheduledFault::at(2, FaultOp::CrashBackend(0)),
            ScheduledFault::at(2, FaultOp::CrashBackend(1)),
            ScheduledFault::at(5, FaultOp::RestartBackend(0)),
            ScheduledFault::at(5, FaultOp::RestartBackend(1)),
        ],
        ..Default::default()
    };
    let first = run_scenario(&config);
    let second = run_scenario(&config);
    first.assert_clean();
    second.assert_clean();
    assert_eq!(
        first.trace_hash,
        second.trace_hash,
        "same seed must replay identically:\n--- first\n{:#?}\n--- second\n{:#?}",
        first.trace.events(),
        second.trace.events()
    );
    assert_eq!(first.trace.events(), second.trace.events());
}

/// Different seeds make different decisions (compared on the decision
/// events themselves — the header embeds the seed, so it is excluded).
#[test]
fn different_seeds_diverge() {
    let base = ScenarioConfig {
        name: "diverge",
        ticks: 8,
        clients: 4,
        backends: 2,
        churn: 0.5,
        byte_at_a_time: 0.5,
        abort_mid_message: 0.3,
        trace_outcomes: false,
        ..Default::default()
    };
    let a = run_scenario(&ScenarioConfig {
        seed: 0xD1F0_0001,
        ..base.clone()
    });
    let b = run_scenario(&ScenarioConfig {
        seed: 0xD1F0_0002,
        ..base
    });
    a.assert_clean();
    b.assert_clean();
    let decisions = |r: &flick_sim::ScenarioReport| -> Vec<String> {
        r.trace
            .events()
            .iter()
            .filter(|e| !e.contains("seed"))
            .cloned()
            .collect()
    };
    assert_ne!(
        decisions(&a),
        decisions(&b),
        "two seeds drew identical decision streams"
    );
}

/// The self-test of the checker itself: a deliberately injected
/// violation must be caught and must report the scenario seed so the
/// run can be replayed.
#[test]
fn injected_violation_is_caught_and_reports_its_seed() {
    let seed = 0xBAD_5EED_000C;
    let report = run_scenario(&ScenarioConfig {
        name: "sabotage",
        seed,
        ticks: 3,
        clients: 2,
        backends: 0,
        faults: vec![ScheduledFault::at(1, FaultOp::SabotageZeroCopy)],
        checks: TickChecks {
            expect_zero_copy: true,
            expect_no_busy_retries: true,
            retry_budget: None,
        },
        ..Default::default()
    });
    assert!(
        !report.violations.is_empty(),
        "the sabotaged run must be flagged"
    );
    let violation = &report.violations[0];
    assert_eq!(violation.seed, seed);
    assert_eq!(violation.tick, 1);
    let rendered = violation.to_string();
    assert!(
        rendered.contains(&format!("{seed:#018x}")),
        "violation must print its replay seed: {rendered}"
    );
}

/// Satellite: a backend vanishing mid-run and rejoining must not leak
/// tasks or wedge the load-balancer graph — round-robin placement.
/// Partial outage routes nondeterministically (connection-id hash), so
/// outcome tracing is off; the leak/conservation checks are the test.
#[test]
fn backend_vanishing_and_rejoining_round_robin() {
    let report = run_scenario(&ScenarioConfig {
        name: "partial-outage-rr",
        seed: 0x9A47_000D,
        ticks: 10,
        clients: 6,
        backends: 3,
        placement: Placement::RoundRobin,
        faults: vec![
            ScheduledFault::at(2, FaultOp::CrashBackend(1)),
            ScheduledFault::at(6, FaultOp::RestartBackend(1)),
        ],
        trace_outcomes: false,
        ..Default::default()
    });
    report.assert_clean();
    assert!(report.requests_ok > 0, "{report:?}");
    assert!(
        report.backend_requests_served >= report.requests_ok,
        "{report:?}"
    );
}

/// Satellite: the same vanish/rejoin schedule under least-loaded
/// placement (the placement policy sees load shift as graphs die).
#[test]
fn backend_vanishing_and_rejoining_least_loaded() {
    let report = run_scenario(&ScenarioConfig {
        name: "partial-outage-ll",
        seed: 0x9A47_000E,
        ticks: 10,
        clients: 6,
        backends: 3,
        placement: Placement::LeastLoaded,
        faults: vec![
            ScheduledFault::at(2, FaultOp::CrashBackend(1)),
            ScheduledFault::at(6, FaultOp::RestartBackend(1)),
        ],
        trace_outcomes: false,
        ..Default::default()
    });
    report.assert_clean();
    assert!(report.requests_ok > 0, "{report:?}");
}

/// The headline hostile scenario (ISSUE 8 acceptance): a quarter of all
/// frames are grammar-aware mutations switched on via
/// [`FaultOp::HostileTraffic`], one backend crashes and comes back
/// mid-storm, and the ejection clock gets a quiet window to expire so a
/// readmit probe must fire. The full tick battery (conservation,
/// busy-retry, always-on retry budget) runs every tick; on top the test
/// pins the malformed accounting and the eject/readmit cycle.
#[test]
fn hostile_traffic_with_backend_crash_cycle() {
    let policy = BackendPolicy {
        eject_for: Duration::from_millis(50),
        ..Default::default()
    };
    let report = run_scenario(&ScenarioConfig {
        name: "hostile-crash-cycle",
        seed: 0x4057_11E0_000F,
        ticks: 12,
        clients: 6,
        backends: 2,
        faults: vec![
            ScheduledFault::at(1, FaultOp::HostileTraffic { permille: 250 }),
            ScheduledFault::at(4, FaultOp::CrashBackend(0)),
            ScheduledFault::at(8, FaultOp::RestartBackend(0)),
            // Let the shortened ejection sit-out expire so tick 9's
            // checkouts may probe (and readmit) the revived backend. The
            // window is for the clock, not for quietness: hostile
            // connections torn down at the end of tick 8 are still
            // draining into it, so the run allowance stays loose.
            ScheduledFault::at(
                9,
                FaultOp::QuietCheck {
                    ms: 100,
                    max_extra_task_runs: 64,
                },
            ),
        ],
        backend_policy: policy,
        // Partial outage routes by connection id — outcomes off.
        trace_outcomes: false,
        ..Default::default()
    });
    report.assert_clean();
    let total = report.requests_ok + report.requests_failed + report.hostile_sent;
    assert!(
        report.hostile_sent * 10 >= total,
        "storm must mutate at least 10% of traffic: {} of {total}",
        report.hostile_sent
    );
    assert!(
        report.hostile_rejected > 0,
        "no malformed rejection observed: {report:?}"
    );
    assert!(
        report.final_net.malformed_closes >= report.hostile_rejected,
        "rejections must be counted as malformed closes: {report:?}"
    );
    assert!(
        report.final_net.malformed_closes <= report.hostile_sent,
        "clean traffic was misflagged as malformed: {report:?}"
    );
    assert_eq!(report.final_metrics.output_busy_retries, 0, "{report:?}");
    assert!(
        report.final_metrics.backend_ejections >= 1,
        "the crashed backend must get ejected: {report:?}"
    );
    assert!(
        report.final_metrics.backend_readmits >= 1,
        "the revived backend must get readmitted: {report:?}"
    );
    report
        .final_metrics
        .check_retry_budget(u64::from(BackendPolicy::default().retry_budget))
        .expect("retry budget exceeded");
    assert!(report.requests_ok > 0, "{report:?}");
}

/// Hostile replay contract: with every backend healthy, a mutation storm
/// has deterministic outcome classes, so two runs of the same seed must
/// produce identical traces, identical hostile accounting, and matching
/// substrate-side malformed-close counters — under least-loaded routing
/// for good measure.
#[test]
fn hostile_storm_replays_byte_identically() {
    let config = ScenarioConfig {
        name: "hostile-replay",
        seed: 0x4057_11E1_0010,
        ticks: 8,
        clients: 4,
        backends: 2,
        hostile: 0.3,
        churn: 0.2,
        byte_at_a_time: 0.2,
        backend_policy: BackendPolicy {
            route: RoutePolicy::LeastLoaded,
            ..Default::default()
        },
        trace_outcomes: true,
        ..Default::default()
    };
    let first = run_scenario(&config);
    let second = run_scenario(&config);
    first.assert_clean();
    second.assert_clean();
    assert!(first.hostile_sent > 0, "{first:?}");
    assert!(first.hostile_rejected > 0, "{first:?}");
    assert_eq!(
        first.trace_hash,
        second.trace_hash,
        "same seed must replay the storm identically:\n--- first\n{:#?}\n--- second\n{:#?}",
        first.trace.events(),
        second.trace.events()
    );
    assert_eq!(first.hostile_sent, second.hostile_sent);
    assert_eq!(first.hostile_rejected, second.hostile_rejected);
    assert!(
        first.final_net.malformed_closes >= first.hostile_rejected
            && first.final_net.malformed_closes <= first.hostile_sent,
        "malformed closes out of bounds: {first:?}"
    );
}

/// Randomized mutator sweep for CI: fresh seeds drive the hostile storm
/// (plus churn and a full crash/restart cycle) and every failing seed is
/// printed for pinning. Ignored by default; CI runs it with
/// `-- --ignored`. `SIM_SWEEP_SEEDS` / `SIM_SWEEP_BASE` as for the
/// clean-traffic sweep.
#[test]
#[ignore = "mutator sweep — run explicitly or from CI"]
fn randomized_mutator_sweep() {
    let count: u64 = std::env::var("SIM_SWEEP_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let base: u64 = std::env::var("SIM_SWEEP_BASE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock after epoch")
                .as_secs()
                .wrapping_mul(0xA57)
        });
    let mut failing = Vec::new();
    for i in 0..count {
        let seed = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let report = run_scenario(&ScenarioConfig {
            name: "mutator-sweep",
            seed,
            ticks: 8,
            clients: 4,
            backends: 2,
            hostile: 0.3,
            churn: 0.3,
            faults: vec![
                ScheduledFault::at(3, FaultOp::CrashBackend(0)),
                ScheduledFault::at(3, FaultOp::CrashBackend(1)),
                ScheduledFault::at(5, FaultOp::RestartBackend(0)),
                ScheduledFault::at(5, FaultOp::RestartBackend(1)),
            ],
            ..Default::default()
        });
        if report.violations.is_empty() {
            println!(
                "mutator seed {seed:#018x}: clean ({} ok, {} hostile, {} rejected)",
                report.requests_ok, report.hostile_sent, report.hostile_rejected
            );
        } else {
            println!("mutator seed {seed:#018x}: FAILED");
            for violation in &report.violations {
                println!("  {violation}");
            }
            failing.push(seed);
        }
    }
    assert!(
        failing.is_empty(),
        "failing seeds (pin one to replay): {failing:#x?}"
    );
}

/// Randomized seed sweep for CI: run the churny chaos schedule over a
/// batch of fresh seeds and print every failing seed (each failure is
/// replayable by pinning that seed in a test above). Ignored by default;
/// CI runs it with `-- --ignored`. `SIM_SWEEP_SEEDS` controls the batch
/// size, `SIM_SWEEP_BASE` the first seed.
#[test]
#[ignore = "seed sweep — run explicitly or from CI"]
fn randomized_seed_sweep() {
    let count: u64 = std::env::var("SIM_SWEEP_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let base: u64 = std::env::var("SIM_SWEEP_BASE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock after epoch")
                .as_secs()
        });
    let mut failing = Vec::new();
    for i in 0..count {
        let seed = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let report = run_scenario(&ScenarioConfig {
            name: "sweep",
            seed,
            ticks: 8,
            clients: 4,
            backends: 2,
            churn: 0.4,
            byte_at_a_time: 0.3,
            abort_mid_message: 0.2,
            faults: vec![
                ScheduledFault::at(3, FaultOp::CrashBackend(0)),
                ScheduledFault::at(3, FaultOp::CrashBackend(1)),
                ScheduledFault::at(5, FaultOp::RestartBackend(0)),
                ScheduledFault::at(5, FaultOp::RestartBackend(1)),
            ],
            ..Default::default()
        });
        if report.violations.is_empty() {
            println!("sweep seed {seed:#018x}: clean ({} ok)", report.requests_ok);
        } else {
            println!("sweep seed {seed:#018x}: FAILED");
            for violation in &report.violations {
                println!("  {violation}");
            }
            failing.push(seed);
        }
    }
    assert!(
        failing.is_empty(),
        "failing seeds (pin one to replay): {failing:#x?}"
    );
}
