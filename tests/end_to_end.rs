//! Integration tests spanning the whole stack: FLICK source → compiler →
//! platform → simulated network → workload generators.

use flick::net_substrate::listener::ConnectOptions;
use flick::services::hadoop::hadoop_aggregator;
use flick::services::http::{HttpLoadBalancerFactory, StaticWebServerFactory};
use flick::services::memcached::{memcached_proxy, memcached_router};
use flick::{Flick, Platform, PlatformConfig, ServiceSpec};
use flick_runtime::OutputMode;
use flick_workload::backends::{start_http_backend, start_memcached_backend, start_sink_backend};
use flick_workload::hadoop::{run_hadoop_mappers, wait_for_quiescence, HadoopLoadConfig};
use flick_workload::http::{run_http_load, HttpLoadConfig};
use flick_workload::memcached::{run_memcached_load, MemcachedLoadConfig};
use std::time::Duration;

#[test]
fn listing1_memcached_proxy_end_to_end() {
    let platform = Platform::new(PlatformConfig {
        workers: 2,
        ..Default::default()
    });
    let net = platform.net();
    let backend_ports = vec![11501u16, 11502, 11503];
    let backends: Vec<_> = backend_ports
        .iter()
        .map(|p| start_memcached_backend(&net, *p))
        .collect();
    let _svc = platform
        .deploy(ServiceSpec::new("proxy", 11500, memcached_proxy()).with_backends(backend_ports))
        .unwrap();
    let stats = run_memcached_load(
        &net,
        &MemcachedLoadConfig {
            port: 11500,
            clients: 8,
            duration: Duration::from_millis(400),
            key_space: 256,
            ..Default::default()
        },
    );
    assert!(stats.completed > 50, "{stats:?}");
    assert_eq!(stats.failed, 0);
    // Hash partitioning spreads keys over every backend.
    assert!(backends.iter().all(|b| b.requests_served() > 0));
}

#[test]
fn cache_router_reduces_backend_load() {
    let platform = Platform::new(PlatformConfig {
        workers: 2,
        ..Default::default()
    });
    let net = platform.net();
    let backend = start_memcached_backend(&net, 11601);
    let _svc = platform
        .deploy(ServiceSpec::new("router", 11600, memcached_router()).with_backends(vec![11601]))
        .unwrap();
    let stats = run_memcached_load(
        &net,
        &MemcachedLoadConfig {
            port: 11600,
            clients: 4,
            duration: Duration::from_millis(400),
            key_space: 8, // a tiny key space makes almost every request a cache hit
            ..Default::default()
        },
    );
    assert!(stats.completed > 50, "{stats:?}");
    let backend_requests = backend.requests_served();
    assert!(
        backend_requests * 4 < stats.completed,
        "the router cache should absorb most requests: {backend_requests} backend vs {} total",
        stats.completed
    );
}

#[test]
fn http_lb_and_static_server_serve_traffic() {
    let platform = Platform::new(PlatformConfig {
        workers: 2,
        ..Default::default()
    });
    let net = platform.net();
    let backend_ports = vec![8601u16, 8602];
    let _backends: Vec<_> = backend_ports
        .iter()
        .map(|p| start_http_backend(&net, *p, b"w"))
        .collect();
    let _lb = platform
        .deploy(
            ServiceSpec::new("lb", 8600, HttpLoadBalancerFactory::new())
                .with_backends(backend_ports),
        )
        .unwrap();
    let _web = platform
        .deploy(ServiceSpec::new(
            "web",
            8610,
            StaticWebServerFactory::new(&b"static"[..]),
        ))
        .unwrap();
    for port in [8600u16, 8610] {
        let stats = run_http_load(
            &net,
            &HttpLoadConfig {
                port,
                concurrency: 4,
                duration: Duration::from_millis(300),
                ..Default::default()
            },
        );
        assert!(stats.completed > 10, "port {port}: {stats:?}");
        assert_eq!(stats.failed, 0, "port {port}");
    }
}

/// The zero-copy data plane's regression gate: a full load-balancer run
/// (client → LB → backend → LB → client, framed HTTP both ways) must
/// complete without a single ingest-buffer carry — every message is parsed
/// straight out of the refcounted buffer the socket filled, and completing
/// one is an index bump, not a memcpy.
#[test]
fn shared_buffer_ingest_performs_zero_copies() {
    let platform = Platform::new(PlatformConfig {
        workers: 2,
        ..Default::default()
    });
    let net = platform.net();
    let backend_ports = vec![8701u16, 8702];
    let _backends: Vec<_> = backend_ports
        .iter()
        .map(|p| start_http_backend(&net, *p, b"zero-copy"))
        .collect();
    let _lb = platform
        .deploy(
            ServiceSpec::new("lb", 8700, HttpLoadBalancerFactory::new())
                .with_backends(backend_ports),
        )
        .unwrap();
    let stats = run_http_load(
        &net,
        &HttpLoadConfig {
            port: 8700,
            concurrency: 4,
            duration: Duration::from_millis(300),
            ..Default::default()
        },
    );
    assert!(stats.completed > 10, "{stats:?}");
    assert_eq!(stats.failed, 0);
    // The same invariant helpers the simulation harness applies per tick:
    // conservation laws plus the zero-copy gate, derived in one place.
    let snap = net.stats().snapshot();
    snap.check_conservation().expect("substrate conservation");
    snap.check_zero_copy()
        .expect("the shared-buffer ingest path must not copy");
    platform
        .metrics()
        .snapshot()
        .check_conservation()
        .expect("runtime conservation");
}

/// The writable-interest acceptance gate: a peer that stops reading parks
/// the service's output task on writable readiness. While the peer is
/// stalled the task performs **zero** busy retries and the whole platform
/// goes quiet (no task runs at all); once the peer drains, the response
/// arrives intact.
#[test]
fn stalled_peer_parks_the_output_task_without_busy_retries() {
    let platform = Platform::new(PlatformConfig {
        workers: 2,
        ..Default::default()
    });
    let net = platform.net();
    // A 16 KB response against a 4 KB pipe guarantees the output task hits
    // WouldBlock with most of the response still buffered.
    let _svc = platform
        .deploy(ServiceSpec::new(
            "stall-web",
            8710,
            StaticWebServerFactory::new(vec![b'y'; 16 * 1024]),
        ))
        .unwrap();
    let client = net
        .connect_with(
            8710,
            &ConnectOptions {
                capacity: Some(4 * 1024),
                ..Default::default()
            },
        )
        .unwrap();
    client
        .write_all(b"GET /stall HTTP/1.1\r\nHost: s\r\n\r\n")
        .unwrap();
    // Let the graph build and the output task slam into the full pipe.
    std::thread::sleep(Duration::from_millis(100));
    let before = platform.metrics().snapshot();
    std::thread::sleep(Duration::from_millis(150));
    let after = platform.metrics().snapshot();
    assert_eq!(
        after.output_busy_retries, 0,
        "a stalled peer must park the output task, not spin it"
    );
    assert_eq!(
        after.task_runs, before.task_runs,
        "a parked output task costs zero task runs while the peer stalls"
    );

    // Draining the pipe delivers the rest of the response: the writable
    // wakeup path works end to end.
    let mut response = Vec::new();
    let mut buf = [0u8; 4096];
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !response.windows(4).any(|w| w == b"yyyy") || response.len() < 16 * 1024 {
        assert!(std::time::Instant::now() < deadline, "response stalled");
        match client.read_timeout(&mut buf, Duration::from_secs(5)) {
            Ok(n) => response.extend_from_slice(&buf[..n]),
            Err(e) => panic!("drain failed after {} bytes: {e}", response.len()),
        }
    }
    assert!(String::from_utf8_lossy(&response).starts_with("HTTP/1.1 200 OK"));
    client.close();
}

/// The ablation baseline still works: under `OutputMode::BusyRetry` the
/// same stalled peer makes the output task spin runnable (the behaviour
/// the writable-interest refactor removed from the default path).
#[test]
fn busy_retry_mode_spins_against_a_stalled_peer() {
    let platform = Platform::new(PlatformConfig {
        workers: 2,
        output_mode: OutputMode::BusyRetry,
        ..Default::default()
    });
    let net = platform.net();
    let _svc = platform
        .deploy(ServiceSpec::new(
            "busy-web",
            8711,
            StaticWebServerFactory::new(vec![b'y'; 16 * 1024]),
        ))
        .unwrap();
    let client = net
        .connect_with(
            8711,
            &ConnectOptions {
                capacity: Some(4 * 1024),
                ..Default::default()
            },
        )
        .unwrap();
    client
        .write_all(b"GET /spin HTTP/1.1\r\nHost: s\r\n\r\n")
        .unwrap();
    std::thread::sleep(Duration::from_millis(150));
    let retries = platform.metrics().snapshot().output_busy_retries;
    assert!(
        retries > 0,
        "the busy-retry ablation baseline must actually busy-retry"
    );
    client.close();
}

#[test]
fn listing3_hadoop_aggregation_reduces_traffic() {
    let platform = Platform::new(PlatformConfig {
        workers: 4,
        ..Default::default()
    });
    let net = platform.net();
    let (_reducer, reducer_bytes) = start_sink_backend(&net, 9901);
    let _svc = platform
        .deploy(ServiceSpec::new("hadoop", 9900, hadoop_aggregator(3)).with_backends(vec![9901]))
        .unwrap();
    let stats = run_hadoop_mappers(
        &net,
        &HadoopLoadConfig {
            port: 9900,
            mappers: 3,
            word_len: 12,
            distinct_words: 50,
            bytes_per_mapper: 128 * 1024,
            link_bits_per_sec: None,
            seed: None,
        },
    );
    assert_eq!(stats.failed, 0);
    let forwarded = wait_for_quiescence(&reducer_bytes, Duration::from_secs(10));
    assert!(forwarded > 0);
    assert!(
        forwarded < stats.bytes / 2,
        "aggregation must reduce traffic: {} -> {forwarded}",
        stats.bytes
    );
}

#[test]
fn facade_compiles_and_runs_custom_program() {
    let flick = Flick::new(PlatformConfig {
        workers: 2,
        ..Default::default()
    });
    let program = r#"
type frame: record
  kind : integer {signed=false, size=1}
  len : integer {signed=false, size=2}
  body : string {size=len}

proc Mirror: (frame/frame client)
  client => client
"#;
    let _svc = flick.run_program(program, "Mirror", 9950, &[]).unwrap();
    let client = flick.net().connect(9950).unwrap();
    client.write_all(&[3u8, 0, 2, b'o', b'k']).unwrap();
    let mut buf = [0u8; 5];
    client
        .read_exact_timeout(&mut buf, Duration::from_secs(5))
        .unwrap();
    assert_eq!(&buf, &[3u8, 0, 2, b'o', b'k']);
}
