//! Integration tests spanning the whole stack: FLICK source → compiler →
//! platform → simulated network → workload generators.

use flick::services::hadoop::hadoop_aggregator;
use flick::services::http::{HttpLoadBalancerFactory, StaticWebServerFactory};
use flick::services::memcached::{memcached_proxy, memcached_router};
use flick::{Flick, Platform, PlatformConfig, ServiceSpec};
use flick_workload::backends::{start_http_backend, start_memcached_backend, start_sink_backend};
use flick_workload::hadoop::{run_hadoop_mappers, wait_for_quiescence, HadoopLoadConfig};
use flick_workload::http::{run_http_load, HttpLoadConfig};
use flick_workload::memcached::{run_memcached_load, MemcachedLoadConfig};
use std::time::Duration;

#[test]
fn listing1_memcached_proxy_end_to_end() {
    let platform = Platform::new(PlatformConfig {
        workers: 2,
        ..Default::default()
    });
    let net = platform.net();
    let backend_ports = vec![11501u16, 11502, 11503];
    let backends: Vec<_> = backend_ports
        .iter()
        .map(|p| start_memcached_backend(&net, *p))
        .collect();
    let _svc = platform
        .deploy(ServiceSpec::new("proxy", 11500, memcached_proxy()).with_backends(backend_ports))
        .unwrap();
    let stats = run_memcached_load(
        &net,
        &MemcachedLoadConfig {
            port: 11500,
            clients: 8,
            duration: Duration::from_millis(400),
            key_space: 256,
            ..Default::default()
        },
    );
    assert!(stats.completed > 50, "{stats:?}");
    assert_eq!(stats.failed, 0);
    // Hash partitioning spreads keys over every backend.
    assert!(backends.iter().all(|b| b.requests_served() > 0));
}

#[test]
fn cache_router_reduces_backend_load() {
    let platform = Platform::new(PlatformConfig {
        workers: 2,
        ..Default::default()
    });
    let net = platform.net();
    let backend = start_memcached_backend(&net, 11601);
    let _svc = platform
        .deploy(ServiceSpec::new("router", 11600, memcached_router()).with_backends(vec![11601]))
        .unwrap();
    let stats = run_memcached_load(
        &net,
        &MemcachedLoadConfig {
            port: 11600,
            clients: 4,
            duration: Duration::from_millis(400),
            key_space: 8, // a tiny key space makes almost every request a cache hit
            ..Default::default()
        },
    );
    assert!(stats.completed > 50, "{stats:?}");
    let backend_requests = backend.requests_served();
    assert!(
        backend_requests * 4 < stats.completed,
        "the router cache should absorb most requests: {backend_requests} backend vs {} total",
        stats.completed
    );
}

#[test]
fn http_lb_and_static_server_serve_traffic() {
    let platform = Platform::new(PlatformConfig {
        workers: 2,
        ..Default::default()
    });
    let net = platform.net();
    let backend_ports = vec![8601u16, 8602];
    let _backends: Vec<_> = backend_ports
        .iter()
        .map(|p| start_http_backend(&net, *p, b"w"))
        .collect();
    let _lb = platform
        .deploy(
            ServiceSpec::new("lb", 8600, HttpLoadBalancerFactory::new())
                .with_backends(backend_ports),
        )
        .unwrap();
    let _web = platform
        .deploy(ServiceSpec::new(
            "web",
            8610,
            StaticWebServerFactory::new(&b"static"[..]),
        ))
        .unwrap();
    for port in [8600u16, 8610] {
        let stats = run_http_load(
            &net,
            &HttpLoadConfig {
                port,
                concurrency: 4,
                duration: Duration::from_millis(300),
                ..Default::default()
            },
        );
        assert!(stats.completed > 10, "port {port}: {stats:?}");
        assert_eq!(stats.failed, 0, "port {port}");
    }
}

#[test]
fn listing3_hadoop_aggregation_reduces_traffic() {
    let platform = Platform::new(PlatformConfig {
        workers: 4,
        ..Default::default()
    });
    let net = platform.net();
    let (_reducer, reducer_bytes) = start_sink_backend(&net, 9901);
    let _svc = platform
        .deploy(ServiceSpec::new("hadoop", 9900, hadoop_aggregator(3)).with_backends(vec![9901]))
        .unwrap();
    let stats = run_hadoop_mappers(
        &net,
        &HadoopLoadConfig {
            port: 9900,
            mappers: 3,
            word_len: 12,
            distinct_words: 50,
            bytes_per_mapper: 128 * 1024,
            link_bits_per_sec: None,
        },
    );
    assert_eq!(stats.failed, 0);
    let forwarded = wait_for_quiescence(&reducer_bytes, Duration::from_secs(10));
    assert!(forwarded > 0);
    assert!(
        forwarded < stats.bytes / 2,
        "aggregation must reduce traffic: {} -> {forwarded}",
        stats.bytes
    );
}

#[test]
fn facade_compiles_and_runs_custom_program() {
    let flick = Flick::new(PlatformConfig {
        workers: 2,
        ..Default::default()
    });
    let program = r#"
type frame: record
  kind : integer {signed=false, size=1}
  len : integer {signed=false, size=2}
  body : string {size=len}

proc Mirror: (frame/frame client)
  client => client
"#;
    let _svc = flick.run_program(program, "Mirror", 9950, &[]).unwrap();
    let client = flick.net().connect(9950).unwrap();
    client.write_all(&[3u8, 0, 2, b'o', b'k']).unwrap();
    let mut buf = [0u8; 5];
    client
        .read_exact_timeout(&mut buf, Duration::from_secs(5))
        .unwrap();
    assert_eq!(&buf, &[3u8, 0, 2, b'o', b'k']);
}
