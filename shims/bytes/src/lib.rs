//! Offline shim for the `bytes` crate.
//!
//! Provides [`Bytes`]: a cheaply cloneable, immutable, contiguous byte
//! buffer — the subset of the `bytes` 1.x API that FLICK uses. Cloning is
//! O(1) (an `Arc` bump or a static pointer copy), and [`Bytes::slice`]
//! shares the parent allocation. See `DESIGN.md` §7 for the shim policy.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared {
        data: Arc<[u8]>,
        start: usize,
        end: usize,
    },
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Creates a `Bytes` from a static slice without allocating.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(bytes),
        }
    }

    /// Creates a `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Returns a sub-slice sharing this buffer's allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice {begin}..{end} out of bounds (len {len})"
        );
        match &self.repr {
            Repr::Static(s) => Bytes {
                repr: Repr::Static(&s[begin..end]),
            },
            Repr::Shared { data, start, .. } => Bytes {
                repr: Repr::Shared {
                    data: Arc::clone(data),
                    start: start + begin,
                    end: start + end,
                },
            },
        }
    }

    /// Copies the buffer into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Builds a `Bytes` view over `start..end` of a shared allocation
    /// without copying.
    ///
    /// Shim extension (not part of the upstream `bytes` 1.x API): the
    /// upstream crate reaches the same representation through `BytesMut::
    /// freeze`, which cannot be implemented without `unsafe`. This is the
    /// constructor behind `flick_net`'s `SharedBuf` ingest buffer; no other
    /// caller should need it.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn from_arc_slice(data: Arc<[u8]>, start: usize, end: usize) -> Self {
        assert!(
            start <= end && end <= data.len(),
            "region {start}..{end} out of bounds (len {})",
            data.len()
        );
        Bytes {
            repr: Repr::Shared { data, start, end },
        }
    }

    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared { data, start, end } => &data[*start..*end],
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            repr: Repr::Shared {
                start: 0,
                end: v.len(),
                data: Arc::from(v),
            },
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if b == b'"' {
                write!(f, "\\\"")?;
            } else if (0x20..0x7f).contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_eq() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = Bytes::from_static(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(&a[..], &[1, 2, 3]);
    }

    #[test]
    fn slice_shares_and_bounds() {
        let a = Bytes::from(vec![0, 1, 2, 3, 4]);
        let s = a.slice(1..4);
        assert_eq!(&s[..], &[1, 2, 3]);
        let ss = s.slice(1..);
        assert_eq!(&ss[..], &[2, 3]);
        assert_eq!(a.slice(..).len(), 5);
    }

    #[test]
    fn debug_escapes() {
        let d = format!("{:?}", Bytes::from_static(b"hi\x00"));
        assert_eq!(d, "b\"hi\\x00\"");
    }
}
