//! Offline shim for the `rand` crate.
//!
//! Provides the subset of the `rand` 0.8 API that FLICK's load generators
//! use: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen_range` / `gen_bool` / `gen`. The generator
//! is splitmix64 — statistically fine for workload synthesis, NOT
//! cryptographically secure (neither is the real `StdRng` contract FLICK
//! relies on: deterministic streams from a fixed seed).
//!
//! See `DESIGN.md` §7 for the shim policy.

use std::ops::Range;

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next value in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next value truncated to 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range`. Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 mantissa bits of uniformity is plenty for workload mixes.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Samples a uniform value of a primitive type.
    fn gen<T: Fill>(&mut self) -> T
    where
        Self: Sized,
    {
        T::fill(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types uniformly sampleable from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[range.start, range.end)`.
    fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = (range.end as u128) - (range.start as u128);
                // Modulo bias is < 2^-64 for every span FLICK uses.
                let v = (rng.next_u64() as u128) % span;
                (range.start as u128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Fill {
    /// Samples a uniform value.
    fn fill<R: RngCore>(rng: &mut R) -> Self;
}

impl Fill for u8 {
    fn fill<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}

impl Fill for u32 {
    fn fill<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Fill for u64 {
    fn fill<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Fill for f64 {
    fn fill<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Fill for bool {
    fn fill<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // add + two xor-shift-multiplies per output.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let b = rng.gen_range(0u8..26);
            assert!(b < 26);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
