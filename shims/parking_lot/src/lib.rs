//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of the `parking_lot` 0.12 API that FLICK uses, implemented on top
//! of `std::sync`. Semantics match `parking_lot` where they differ from
//! `std`: locks do not poison (a panic while holding a guard simply unlocks),
//! and `Condvar` waits take `&mut MutexGuard` instead of consuming the guard.
//!
//! See `DESIGN.md` §7 for the shim policy.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive. Unlike `std::sync::Mutex`, `lock` returns
/// the guard directly: poisoning is swallowed.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` exists so [`Condvar`] waits
/// can temporarily hand the std guard to `std::sync::Condvar::wait`; it is
/// always `Some` outside that window.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock with the non-poisoning `parking_lot` API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &*guard).finish(),
            Err(std::sync::TryLockError::Poisoned(e)) => f
                .debug_struct("RwLock")
                .field("data", &*e.into_inner())
                .finish(),
            Err(std::sync::TryLockError::WouldBlock) => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable taking `&mut MutexGuard`, `parking_lot`-style.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified. Spurious wakeups are possible, as with any
    /// condition variable.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during condvar wait");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken during condvar wait");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Blocks until notified or `instant` is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        instant: Instant,
    ) -> WaitTimeoutResult {
        let timeout = instant.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Wakes one blocked thread. Returns whether a thread was woken; the std
    /// backend cannot report this, so it is approximated as `true`.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all blocked threads. Returns the number woken; the std backend
    /// cannot report this, so it is approximated as `0`.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A one-time initialisation primitive (subset of `parking_lot::Once`).
pub struct Once {
    inner: std::sync::Once,
}

impl Once {
    /// Creates a new `Once`.
    pub const fn new() -> Self {
        Once {
            inner: std::sync::Once::new(),
        }
    }

    /// Runs `f` exactly once across all callers.
    pub fn call_once<F: FnOnce()>(&self, f: F) {
        self.inner.call_once(f);
    }
}

impl Default for Once {
    fn default() -> Self {
        Once::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let res = c.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notifies_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, c) = &*pair2;
            let mut done = m.lock();
            *done = true;
            drop(done);
            c.notify_all();
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            c.wait_for(&mut done, Duration::from_millis(50));
        }
        t.join().unwrap();
        assert!(*done);
    }
}
