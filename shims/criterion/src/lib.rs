//! Offline shim for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of the criterion 0.5 API the FLICK benches use. It is a plain
//! wall-clock harness: per benchmark it warms up for `warm_up_time`, then
//! measures for `measurement_time`, and prints the mean time per iteration.
//! No statistical analysis, outlier rejection, plots or HTML reports — for
//! publication-grade numbers swap the real criterion back in (the API
//! surface used here is compatible). See `DESIGN.md` §7 for the shim policy.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Copy)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

/// Benchmark harness configuration and entry point.
#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the target number of samples (a lower bound on iterations here).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Sets how long to measure each benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.config.measurement_time = t;
        self
    }

    /// Sets how long to warm up each benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.config.warm_up_time = t;
        self
    }

    /// Opens a named group of related benchmarks. Config overrides made on
    /// the group end with it, as in real criterion.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            config: self.config,
            name: name.into(),
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&self.config, id, &mut f);
        self
    }

    /// Runs a single ungrouped benchmark with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.config, &id.0, &mut |b| f(b, input));
        self
    }
}

/// A named group of benchmarks. Starts from the parent configuration; any
/// override applies to this group only.
pub struct BenchmarkGroup<'a> {
    config: Config,
    name: String,
    // Holds the parent borrow so groups can't outlive or interleave with
    // their Criterion, mirroring real criterion's signature.
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config.measurement_time = t;
        self
    }

    /// Overrides the warm-up time for this group.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.config.warm_up_time = t;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().0);
        run_one(&self.config, &id, &mut f);
        self
    }

    /// Runs a benchmark in this group, passing `input` to the closure.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().0);
        run_one(&self.config, &id, &mut |b| f(b, input));
        self
    }

    /// Ends the group (a no-op here; kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher<'a> {
    config: &'a Config,
    result: Option<Sample>,
}

struct Sample {
    total: Duration,
    iters: u64,
}

/// How many iterations run between deadline checks: keeps the clock-read
/// overhead out of the mean for nanosecond-scale bodies.
const DEADLINE_STRIDE: u64 = 32;

impl Bencher<'_> {
    /// Times `f`: warm up for `warm_up_time`, then measure for
    /// `measurement_time`. Slow bodies run as often as the time budget
    /// allows (minimum one iteration); the deadline is only checked every
    /// [`DEADLINE_STRIDE`] iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        'warmup: loop {
            for _ in 0..DEADLINE_STRIDE {
                black_box(f());
            }
            if Instant::now() >= warm_deadline {
                break 'warmup;
            }
        }
        let mut iters = 0u64;
        let iter_cap = self.config.sample_size as u64 * 1000;
        let start = Instant::now();
        let deadline = start + self.config.measurement_time;
        'measure: loop {
            for _ in 0..DEADLINE_STRIDE {
                black_box(f());
            }
            iters += DEADLINE_STRIDE;
            if Instant::now() >= deadline || iters >= iter_cap {
                break 'measure;
            }
        }
        self.result = Some(Sample {
            total: start.elapsed(),
            iters,
        });
    }
}

fn run_one(config: &Config, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        config,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some(Sample { total, iters }) => {
            let per_iter = total.as_nanos() / u128::from(iters.max(1));
            println!("bench: {id:<50} {per_iter:>12} ns/iter ({iters} iterations)");
        }
        None => println!("bench: {id:<50} (no measurement: closure never called iter)"),
    }
}

/// Declares a benchmark group: either `criterion_group!(name, target, ...)`
/// or the long form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn measures_and_reports() {
        let mut c = fast_criterion();
        let mut group = c.benchmark_group("g");
        let mut ran = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &v| {
            b.iter(|| {
                ran += v;
            })
        });
        group.finish();
        assert!(ran > 0);
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_overrides_do_not_leak_to_parent() {
        let mut c = fast_criterion();
        let mut group = c.benchmark_group("g");
        group.sample_size(1);
        group.measurement_time(Duration::from_millis(1));
        group.finish();
        assert_eq!(c.config.sample_size, 10);
        assert_eq!(c.config.measurement_time, Duration::from_millis(5));
    }
}
