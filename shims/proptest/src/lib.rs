//! Offline shim for the `proptest` crate.
//!
//! Provides the subset of the proptest 1.x API that FLICK's property tests
//! use: the [`proptest!`] macro, `prop_assert*`, [`ProptestConfig`],
//! [`any`], integer-range strategies, [`collection::vec`], and string
//! strategies over a regex subset (`[class]{m,n}` atoms with ranges and
//! escapes — exactly what the tests in `tests/language_properties.rs` use).
//!
//! Differences from real proptest: generation is seeded deterministically
//! from the test name (runs are reproducible, not randomised per run), and
//! there is NO shrinking — a failing case panics with the failing values
//! printed, but is not minimised. See `DESIGN.md` §7 for the shim policy.

use std::fmt::Debug;
use std::ops::Range;

/// Configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Returns a config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test generator (splitmix64 seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator whose stream depends only on `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name gives a stable, well-mixed seed.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A value generator. `generate` draws one value; there is no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                (self.start as u128 + u128::from(rng.below(span))) as $t
            }
        }
    )*};
}

impl_strategy_for_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Via i128: `end - start` would underflow in u128 for
                // ranges with a negative start.
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + i128::from(rng.below(span))) as $t
            }
        }
    )*};
}

impl_strategy_for_int_range!(i8, i16, i32, i64, isize);

/// String strategy: `&str` patterns are a regex subset — a sequence of
/// atoms (a `[...]` character class, an escape, or a literal character),
/// each with an optional `{n}`, `{m,n}`, `*`, `+` or `?` quantifier.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                let pick = atom.chars[rng.below(atom.chars.len() as u64) as usize];
                out.push(pick);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let candidates = match chars[i] {
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
                let class = expand_class(&chars[i + 1..close], pattern);
                i = close + 1;
                class
            }
            '\\' => {
                let c = unescape(chars.get(i + 1).copied(), pattern);
                i += 2;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        assert!(
            !candidates.is_empty(),
            "empty character class in pattern {pattern:?}"
        );
        atoms.push(Atom {
            chars: candidates,
            min,
            max,
        });
    }
    atoms
}

fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let c = match body[i] {
            '\\' => {
                i += 1;
                unescape(body.get(i).copied(), pattern)
            }
            c => c,
        };
        // `a-z` range (a `-` in last position is a literal dash).
        if i + 2 < body.len() && body[i + 1] == '-' {
            let hi = body[i + 2];
            assert!(c <= hi, "inverted range {c}-{hi} in pattern {pattern:?}");
            out.extend(c..=hi);
            i += 3;
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

fn unescape(c: Option<char>, pattern: &str) -> char {
    match c {
        Some('n') => '\n',
        Some('t') => '\t',
        Some('r') => '\r',
        Some('0') => '\0',
        Some(c) => c,
        None => panic!("dangling escape in pattern {pattern:?}"),
    }
}

fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| p + *i)
                .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pattern:?}"));
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier lower bound"),
                    hi.trim().parse().expect("bad quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier count");
                    (n, n)
                }
            }
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        _ => (1, 1),
    }
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range for vec strategy");
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual imports for writing property tests.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Declares property tests. Each function's arguments are drawn from the
/// strategies after `in`, `config.cases` times. Values for a failing case
/// are printed before the panic propagates (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| { $body }));
                if let Err(panic) = outcome {
                    eprintln!("proptest case {case} failed:");
                    $(eprintln!("    {} = {:?}", stringify!($arg), $arg);)+
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_subset() {
        let mut rng = crate::TestRng::deterministic("string_pattern_subset");
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-z0-9:]{0,40}", &mut rng);
            assert!(s.len() <= 40);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ':'));
            let t = crate::Strategy::generate(&"[ -~\n]{0,200}", &mut rng);
            assert!(t.chars().all(|c| (' '..='~').contains(&c) || c == '\n'));
            let u = crate::Strategy::generate(&"[a-z]{1,16}", &mut rng);
            assert!((1..=16).contains(&u.len()));
        }
    }

    #[test]
    fn signed_range_with_negative_start() {
        let mut rng = crate::TestRng::deterministic("signed_range_with_negative_start");
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(-10i64..10), &mut rng);
            assert!((-10..10).contains(&v));
            let w = crate::Strategy::generate(&(i32::MIN..i32::MAX), &mut rng);
            assert!(w < i32::MAX);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires strategies, doc comments and prop_asserts.
        #[test]
        fn macro_end_to_end(x in 3u64..17, v in crate::collection::vec(any::<u8>(), 0..5), s in "[ab]{2}") {
            prop_assert!((3..17).contains(&x));
            prop_assert!(v.len() < 5, "len {}", v.len());
            prop_assert_eq!(s.len(), 2);
            prop_assert_ne!(s.as_str(), "zz");
        }
    }
}
