//! FLICK: developing and running application-specific network services.
//!
//! This is the umbrella crate of the FLICK reproduction (USENIX ATC 2016).
//! It re-exports the public API of every subsystem crate; see the `examples/`
//! directory for runnable end-to-end scenarios and `DESIGN.md` for the
//! system inventory.

pub use flick_compiler as compiler;
pub use flick_core::*;
pub use flick_grammar as grammar;
pub use flick_lang as lang;
pub use flick_net as net_substrate;
pub use flick_runtime as runtime_crate;
pub use flick_services as services;
pub use flick_workload as workload;
