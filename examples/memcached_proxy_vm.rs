//! The Memcached proxy of Listing 1, executed by the bytecode VM.
//!
//! The same compiled service runs under either execution engine
//! (`ExecMode::Interp` walks the IR tree, `ExecMode::Vm` runs the
//! direct-threaded bytecode — see DESIGN.md §15); here the spec pins the
//! VM explicitly and hash-routes requests across two back-ends.
//!
//! Run with: `cargo run --example memcached_proxy_vm`

use flick::runtime::ExecMode;
use flick::services::memcached::memcached_proxy;
use flick::{Platform, PlatformConfig, ServiceSpec};
use flick_grammar::{memcached, ParseOutcome, WireCodec};
use flick_workload::backends::start_memcached_backend;
use std::time::Duration;

fn main() {
    let platform = Platform::new(PlatformConfig {
        workers: 2,
        ..Default::default()
    });
    let net = platform.net();
    let backends = [
        start_memcached_backend(&net, 11401),
        start_memcached_backend(&net, 11402),
    ];
    let _service = platform
        .deploy(
            ServiceSpec::new("proxy-vm", 11400, memcached_proxy())
                .with_backends(vec![11401, 11402])
                .with_exec_mode(ExecMode::Vm),
        )
        .expect("deploy");

    let codec = memcached::MemcachedCodec::new();
    let client = net.connect(11400).expect("connect");
    for key in ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot"] {
        let mut wire = Vec::new();
        codec
            .serialize(
                &memcached::request(memcached::opcode::GETK, key.as_bytes(), b"", b""),
                &mut wire,
            )
            .unwrap();
        client.write_all(&wire).unwrap();
        let mut collected = Vec::new();
        let mut buf = [0u8; 4096];
        let response = loop {
            let n = client
                .read_timeout(&mut buf, Duration::from_secs(5))
                .unwrap();
            collected.extend_from_slice(&buf[..n]);
            if let Ok(ParseOutcome::Complete { message, .. }) = codec.parse(&collected, None) {
                break message;
            }
        };
        assert_eq!(response.str_field("key").unwrap_or(""), key);
        println!("key={key:>8}: answered by a hash-selected backend");
    }
    let served: Vec<u64> = backends.iter().map(|b| b.requests_served()).collect();
    assert_eq!(served.iter().sum::<u64>(), 6);
    println!("bytecode-VM proxy spread 6 requests over back-ends as {served:?}");
}
