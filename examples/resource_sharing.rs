//! The resource-sharing micro-benchmark of §6.4 (Figure 7): 200 tasks split
//! into "light" (1 KB items) and "heavy" (16 KB items) classes, run under
//! the cooperative, non-cooperative and round-robin scheduling policies.
//!
//! Run with: `cargo run --example resource_sharing`

use flick::runtime_crate::scheduler::Scheduler;
use flick::runtime_crate::task::TaskId;
use flick::runtime_crate::tasks::SyntheticWorkTask;
use flick::runtime_crate::{RuntimeMetrics, SchedulingPolicy};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn run(policy: SchedulingPolicy) -> (Duration, Duration) {
    let scheduler = Scheduler::start(2, policy, RuntimeMetrics::new_shared());
    let start = Instant::now();
    let light: Arc<Mutex<Duration>> = Arc::new(Mutex::new(Duration::ZERO));
    let heavy: Arc<Mutex<Duration>> = Arc::new(Mutex::new(Duration::ZERO));
    let mut id = 1u64;
    for (count, size, sink) in [(100usize, 1024usize, &light), (100, 16 * 1024, &heavy)] {
        for i in 0..count {
            let sink = Arc::clone(sink);
            scheduler.register(
                TaskId(id),
                Box::new(SyntheticWorkTask::new(
                    format!("task-{i}"),
                    200,
                    size,
                    Some(Box::new(move || {
                        let mut slot = sink.lock();
                        *slot = (*slot).max(start.elapsed());
                    })),
                )),
            );
            scheduler.schedule(TaskId(id));
            id += 1;
        }
    }
    assert!(scheduler.wait_idle(Duration::from_secs(60)));
    let result = (*light.lock(), *heavy.lock());
    result
}

fn main() {
    for (label, policy) in [
        (
            "cooperative",
            SchedulingPolicy::Cooperative {
                timeslice: Duration::from_micros(50),
            },
        ),
        ("non-cooperative", SchedulingPolicy::NonCooperative),
        ("round-robin", SchedulingPolicy::RoundRobin),
    ] {
        let (light, heavy) = run(policy);
        println!("{label:<16} light tasks done after {light:>10.2?}   heavy tasks done after {heavy:>10.2?}");
    }
    println!("under the cooperative policy the light class finishes well before the heavy class");
}
