//! The Memcached cache router of Listing 1: `GETK` responses are cached in
//! FLICK `global` state shared across task-graph instances, and repeated
//! requests are answered by the middlebox without touching the back-ends.
//!
//! Run with: `cargo run --example memcached_router`

use flick::services::memcached::memcached_router;
use flick::{Platform, PlatformConfig, ServiceSpec};
use flick_grammar::{memcached, ParseOutcome, WireCodec};
use flick_workload::backends::start_memcached_backend;
use std::time::Duration;

fn main() {
    let platform = Platform::new(PlatformConfig {
        workers: 2,
        ..Default::default()
    });
    let net = platform.net();
    let backend = start_memcached_backend(&net, 11301);
    let _service = platform
        .deploy(ServiceSpec::new("router", 11300, memcached_router()).with_backends(vec![11301]))
        .expect("deploy");

    let codec = memcached::MemcachedCodec::new();
    let client = net.connect(11300).expect("connect");
    for round in 0..3 {
        let mut wire = Vec::new();
        codec
            .serialize(
                &memcached::request(memcached::opcode::GETK, b"popular-key", b"", b""),
                &mut wire,
            )
            .unwrap();
        client.write_all(&wire).unwrap();
        let mut collected = Vec::new();
        let mut buf = [0u8; 4096];
        let response = loop {
            let n = client
                .read_timeout(&mut buf, Duration::from_secs(5))
                .unwrap();
            collected.extend_from_slice(&buf[..n]);
            if let Ok(ParseOutcome::Complete { message, .. }) = codec.parse(&collected, None) {
                break message;
            }
        };
        println!(
            "round {round}: key={:?} value={} bytes, backend requests so far: {}",
            response.str_field("key").unwrap_or(""),
            response.bytes_field("value").map(|v| v.len()).unwrap_or(0),
            backend.requests_served()
        );
    }
    println!("only the first request reached the backend; the rest were cache hits in the router");
}
