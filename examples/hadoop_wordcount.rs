//! The Hadoop in-network data aggregator of Listing 3: four mappers stream
//! wordcount key/value pairs through the FLICK combiner, which merges them
//! before they reach the reducer, cutting the traffic that crosses the
//! network.
//!
//! Run with: `cargo run --example hadoop_wordcount`

use flick::services::hadoop::hadoop_aggregator;
use flick::{Platform, PlatformConfig, ServiceSpec};
use flick_workload::backends::start_sink_backend;
use flick_workload::hadoop::{run_hadoop_mappers, wait_for_quiescence, HadoopLoadConfig};
use std::time::Duration;

fn main() {
    let mappers = 4;
    let platform = Platform::new(PlatformConfig {
        workers: 4,
        ..Default::default()
    });
    let net = platform.net();
    let (_reducer, reducer_bytes) = start_sink_backend(&net, 9701);
    let _service = platform
        .deploy(
            ServiceSpec::new("hadoop", 9700, hadoop_aggregator(mappers)).with_backends(vec![9701]),
        )
        .expect("deploy");

    let config = HadoopLoadConfig {
        port: 9700,
        mappers,
        word_len: 8,
        distinct_words: 100,
        bytes_per_mapper: 512 * 1024,
        link_bits_per_sec: None,
        seed: None,
    };
    let stats = run_hadoop_mappers(&net, &config);
    let forwarded = wait_for_quiescence(&reducer_bytes, Duration::from_secs(10));
    println!(
        "mappers sent {} records / {} KiB; the reducer received {} KiB after in-network aggregation ({}x reduction)",
        stats.completed,
        stats.bytes / 1024,
        forwarded / 1024,
        stats.bytes.checked_div(forwarded).unwrap_or(0)
    );
}
