//! Quickstart: write a FLICK program, compile it, deploy it and talk to it.
//!
//! The program is a tiny echo middlebox over a length-prefixed wire format
//! declared entirely with FLICK serialisation annotations; the compiler
//! synthesises the parser and serialiser from the type declaration.
//!
//! Run with: `cargo run --example quickstart`

use flick::Flick;
use std::time::Duration;

const PROGRAM: &str = r#"
type pkt: record
  tag : integer {signed=false, size=1}
  keylen : integer {signed=false, size=2}
  key : string {size=keylen}

proc Echo: (pkt/pkt client)
  client => client
"#;

fn main() {
    let flick = Flick::new(Default::default());
    let _service = flick
        .run_program(PROGRAM, "Echo", 9000, &[])
        .expect("deploy");
    println!("deployed the Echo service on simulated port 9000");

    let client = flick.net().connect(9000).expect("connect");
    let request = [42u8, 0, 5, b'h', b'e', b'l', b'l', b'o'];
    client.write_all(&request).expect("send");
    let mut reply = [0u8; 8];
    client
        .read_exact_timeout(&mut reply, Duration::from_secs(5))
        .expect("receive");
    assert_eq!(reply, request);
    println!(
        "round-tripped {} bytes through the FLICK task graph: {:?}",
        reply.len(),
        &reply
    );
}
