//! The HTTP load balancer use case: ten backend web servers behind the FLICK
//! middlebox, driven by a closed-loop client fleet.
//!
//! The platform runs sharded: one scheduler pool + dispatcher + poller per
//! shard, connection graphs placed round-robin, idle shards stealing
//! runnable tasks across shard boundaries. The run report prints the
//! per-shard utilization and steal counters next to the throughput.
//!
//! Run with: `cargo run --example http_load_balancer`
//!
//! With `--tcp [addr]` (default `127.0.0.1:0`) the balancer runs the
//! **all-TCP path**: the front door is a real OS socket
//! (`Platform::deploy_tcp`), the ten back-ends are real loopback HTTP
//! servers, and the balancer's backend pool connects to them through the
//! kernel — every hop of `client → LB → backend` crosses real sockets,
//! multiplexed by the same per-shard pollers as the simulated substrate.
//! The run prints a curl-style smoke response before the load results.
//!
//! With `--hostile [ratio]` (default `0.1`) that fraction of the fleet's
//! requests is replaced by malformed frames (oversized, duplicate and
//! garbled `Content-Length` declarations). The strict bounded parser must
//! close each poisoned connection without answering, and the run report
//! shows the goodput the clean requests kept next to the malformed-close
//! count the platform recorded. Simulated-fabric mode only.

use flick::runtime_crate::Placement;
use flick::services::http::HttpLoadBalancerFactory;
use flick::{Platform, PlatformConfig, ServiceSpec};
use flick_workload::backends::{start_http_backend, start_tcp_http_backend};
use flick_workload::http::{run_http_load, HttpLoadConfig};
use flick_workload::tcp::{fetch_http, run_tcp_http_load, TcpHttpLoadConfig};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tcp_addr = args
        .iter()
        .position(|a| a == "--tcp")
        .map(|i| args.get(i + 1).cloned().unwrap_or("127.0.0.1:0".into()));
    let hostile_ratio = args
        .iter()
        .position(|a| a == "--hostile")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(0.1)
        })
        .unwrap_or(0.0);
    if hostile_ratio > 0.0 && tcp_addr.is_some() {
        eprintln!("--hostile runs on the simulated fabric; ignoring it with --tcp");
    }

    let platform = Platform::new(PlatformConfig {
        workers: 4,
        shards: 2,
        placement: Placement::RoundRobin,
        ..Default::default()
    });
    let net = platform.net();

    let (stats, served) = match &tcp_addr {
        Some(addr) => {
            // All-TCP: kernel-socket back-ends behind a kernel-socket front
            // door; no request byte ever rides the simulated fabric.
            let backends: Vec<_> = (0..10)
                .map(|_| start_tcp_http_backend(&[b'x'; 137]))
                .collect();
            let spec = ServiceSpec::new("http-lb", 0, HttpLoadBalancerFactory::new())
                .with_tcp_backends(backends.iter().map(|b| b.addr().to_string()).collect());
            let service = platform.deploy_tcp(spec, addr).expect("deploy over TCP");
            let addr = format!("127.0.0.1:{}", service.port());
            println!("all-TCP path: kernel clients -> http://{addr}/ -> 10 kernel back-ends");
            // The curl-style smoke: one GET over the kernel's loopback.
            let response =
                fetch_http(&addr, "/smoke", Duration::from_secs(5)).expect("smoke request");
            let head = String::from_utf8_lossy(&response);
            println!("smoke: {}", head.lines().next().unwrap_or("<empty>"));
            let stats = run_tcp_http_load(
                &addr,
                &TcpHttpLoadConfig {
                    concurrency: 32,
                    duration: Duration::from_secs(1),
                    persistent: true,
                    timeout: Duration::from_secs(5),
                },
            );
            let served: Vec<u64> = backends.iter().map(|b| b.requests_served()).collect();
            (stats, served)
        }
        None => {
            let backend_ports: Vec<u16> = (0..10).map(|i| 8100 + i as u16).collect();
            let backends: Vec<_> = backend_ports
                .iter()
                .map(|p| start_http_backend(&net, *p, &[b'x'; 137]))
                .collect();
            let spec = ServiceSpec::new("http-lb", 8080, HttpLoadBalancerFactory::new())
                .with_backends(backend_ports.clone());
            let _service = platform.deploy(spec).expect("deploy");
            if hostile_ratio > 0.0 {
                println!(
                    "hostile mode: {:.0}% of requests are malformed frames",
                    hostile_ratio * 100.0
                );
            }
            let stats = run_http_load(
                &net,
                &HttpLoadConfig {
                    port: 8080,
                    concurrency: 32,
                    duration: Duration::from_secs(1),
                    persistent: true,
                    timeout: Duration::from_secs(5),
                    hostile_ratio,
                    ..Default::default()
                },
            );
            let served: Vec<u64> = backends.iter().map(|b| b.requests_served()).collect();
            (stats, served)
        }
    };
    println!(
        "completed {} requests in {:.2}s  ->  {:.0} req/s, mean latency {:.2} ms",
        stats.completed,
        stats.elapsed.as_secs_f64(),
        stats.requests_per_sec(),
        stats.latency.mean.as_secs_f64() * 1000.0
    );
    if stats.malformed_sent > 0 {
        let snap = net.stats().snapshot();
        println!(
            "hostile: {} malformed frames sent, {} malformed closes recorded",
            stats.malformed_sent, snap.malformed_closes
        );
    }
    println!("per-backend request counts (hash distribution): {served:?}");
    for status in platform.shard_status() {
        println!(
            "shard {}: {} graphs, {} task runs, stolen in/out {}/{}",
            status.shard,
            status.graphs_built,
            status.load.runs,
            status.load.stolen_in,
            status.load.stolen_out
        );
    }
}
