//! The HTTP load balancer use case: ten backend web servers behind the FLICK
//! middlebox, driven by a closed-loop client fleet.
//!
//! The platform runs sharded: one scheduler pool + dispatcher + poller per
//! shard, connection graphs placed round-robin, idle shards stealing
//! runnable tasks across shard boundaries. The run report prints the
//! per-shard utilization and steal counters next to the throughput.
//!
//! Run with: `cargo run --example http_load_balancer`

use flick::runtime_crate::Placement;
use flick::services::http::HttpLoadBalancerFactory;
use flick::{Platform, PlatformConfig, ServiceSpec};
use flick_workload::backends::start_http_backend;
use flick_workload::http::{run_http_load, HttpLoadConfig};
use std::time::Duration;

fn main() {
    let platform = Platform::new(PlatformConfig {
        workers: 4,
        shards: 2,
        placement: Placement::RoundRobin,
        ..Default::default()
    });
    let net = platform.net();
    let backend_ports: Vec<u16> = (0..10).map(|i| 8100 + i as u16).collect();
    let backends: Vec<_> = backend_ports
        .iter()
        .map(|p| start_http_backend(&net, *p, &[b'x'; 137]))
        .collect();
    let _service = platform
        .deploy(
            ServiceSpec::new("http-lb", 8080, HttpLoadBalancerFactory::new())
                .with_backends(backend_ports.clone()),
        )
        .expect("deploy");

    let stats = run_http_load(
        &net,
        &HttpLoadConfig {
            port: 8080,
            concurrency: 32,
            duration: Duration::from_secs(1),
            persistent: true,
            timeout: Duration::from_secs(5),
        },
    );
    println!(
        "completed {} requests in {:.2}s  ->  {:.0} req/s, mean latency {:.2} ms",
        stats.completed,
        stats.elapsed.as_secs_f64(),
        stats.requests_per_sec(),
        stats.latency.mean.as_secs_f64() * 1000.0
    );
    let served: Vec<u64> = backends.iter().map(|b| b.requests_served()).collect();
    println!("per-backend request counts (hash distribution): {served:?}");
    for status in platform.shard_status() {
        println!(
            "shard {}: {} graphs, {} task runs, stolen in/out {}/{}",
            status.shard,
            status.graphs_built,
            status.load.runs,
            status.load.stolen_in,
            status.load.stolen_out
        );
    }
}
